#include "assess/verdict_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {
namespace {

constexpr std::uint64_t fnv_offset = 1469598103934665603ULL;
constexpr std::uint64_t fnv_prime = 1099511628211ULL;

std::uint64_t fnv1a_append(std::uint64_t hash, std::uint64_t value) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (byte * 8)) & 0xffULL;
        hash *= fnv_prime;
    }
    return hash;
}

std::uint64_t hash_key(std::span<const component_id> key) noexcept {
    std::uint64_t hash = fnv_offset;
    for (const component_id id : key) {
        hash = fnv1a_append(hash, id);
    }
    return hash;
}

std::size_t power_of_two_at_least(std::size_t value) noexcept {
    std::size_t capacity = 1;
    while (capacity < value) {
        capacity <<= 1;
    }
    return capacity;
}

}  // namespace

/// Structural fingerprint of an application: rebinding with a different
/// object whose SHAPE is identical may keep the table (the verdict function
/// is the same), while any shape change must reset it.
std::uint64_t application_fingerprint(const application& app) noexcept {
    std::uint64_t hash = fnv_offset;
    for (const app_component& component : app.components()) {
        hash = fnv1a_append(hash, component.replicas);
    }
    for (const reachability_requirement& req : app.requirements()) {
        hash = fnv1a_append(hash, req.target);
        hash = fnv1a_append(hash, req.source ? *req.source + 1 : 0);
        hash = fnv1a_append(hash, req.min_reachable);
    }
    return hash;
}

verdict_support::verdict_support(const built_topology& topo,
                                 std::size_t component_count,
                                 const fault_tree_forest* forest,
                                 const link_attachment* links)
    : forest_(forest), member_(component_count, 0) {
    if (component_count < topo.graph.node_count()) {
        throw std::invalid_argument{
            "verdict_support: component_count smaller than the graph"};
    }
    const auto add = [this](component_id id) {
        if (member_[id] == 0) {
            member_[id] = 1;
            ++size_;
        }
    };
    // Routing nodes: every non-host (switches, external) can lie on a path;
    // hosts only relay when multi-homed (BCube/DCell server-centric
    // topologies). A degree-1 host is a pure leaf — its failure only
    // matters when an instance is placed on it, which bind() covers.
    for (node_id node = 0; node < topo.graph.node_count(); ++node) {
        if (topo.graph.kind(node) != node_kind::host ||
            topo.graph.degree(node) > 1) {
            add(node);
        }
    }
    if (links != nullptr) {
        for (const component_id link : links->component_of_edge) {
            if (link != invalid_node) {
                add(link);
            }
        }
    }
    if (forest_ != nullptr) {
        // Fault-tree dependencies of every member: a supply/software/...
        // failure flips a member's effective state, so it must stay in the
        // cache key. Leaves read RAW dependency state (round_state), so one
        // level suffices — deeper chains live inside the trees themselves.
        std::vector<component_id> members;
        members.reserve(size_);
        for (component_id id = 0; id < member_.size(); ++id) {
            if (member_[id] != 0) {
                members.push_back(id);
            }
        }
        for (const component_id id : members) {
            for (const component_id dep : forest_->dependencies_of(id)) {
                add(dep);
            }
        }
    }

    // Host attachment lists (host_attachment()): CSR over node ids. Only
    // hosts get entries — they are the only nodes a plan can place on.
    attach_begin_.assign(topo.graph.node_count() + 1, 0);
    std::vector<component_id> scratch;
    for (node_id node = 0; node < topo.graph.node_count(); ++node) {
        attach_begin_[node] = static_cast<std::uint32_t>(attach_pool_.size());
        if (topo.graph.kind(node) != node_kind::host) {
            continue;
        }
        scratch.clear();
        const std::span<const node_id> adjacent = topo.graph.neighbors(node);
        const std::span<const std::uint32_t> edges =
            topo.graph.incident_edges(node);
        for (std::size_t i = 0; i < adjacent.size(); ++i) {
            scratch.push_back(adjacent[i]);
            if (links != nullptr) {
                const component_id link = links->component_of_edge[edges[i]];
                if (link != invalid_node) {
                    scratch.push_back(link);
                }
            }
        }
        if (forest_ != nullptr) {
            const std::size_t direct = scratch.size();
            for (std::size_t i = 0; i < direct; ++i) {
                for (const component_id dep :
                     forest_->dependencies_of(scratch[i])) {
                    scratch.push_back(dep);
                }
            }
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        attach_pool_.insert(attach_pool_.end(), scratch.begin(),
                            scratch.end());
    }
    attach_begin_[topo.graph.node_count()] =
        static_cast<std::uint32_t>(attach_pool_.size());
}

verdict_cache::verdict_cache(const verdict_support& support,
                             std::size_t max_entries, bool cross_plan)
    : support_(&support),
      max_entries_(std::max<std::size_t>(max_entries, 1)),
      cross_plan_(cross_plan),
      mask_(power_of_two_at_least(2 * max_entries_) - 1),
      slots_(mask_ + 1),
      member_(support.membership().begin(), support.membership().end()),
      support_size_(support.static_size()) {
    if (cross_plan_) {
        delta_member_.assign(support.component_count(), 0);
    }
}

void verdict_cache::reset_table() noexcept {
    ++epoch_;
    if (epoch_ == 0) {
        // uint32 generation wrapped: stale slots could alias the fresh
        // generation, so wipe them for real once per 2^32 resets.
        std::fill(slots_.begin(), slots_.end(), slot{});
        epoch_ = 1;
    }
    key_pool_.clear();
    live_slots_.clear();
    size_ = 0;
    dead_count_ = 0;
}

void verdict_cache::warm_rebind(const deployment_plan& plan) {
    // Swap delta: hosts that moved in or out of a slot (exact slot-wise
    // diff — multiplicity and permutation changes count, so duplicate-host
    // plans stay sound) plus their fault-tree dependencies at the core kill
    // level, plus their attachment components at the semi kill level.
    const fault_tree_forest* forest = support_->forest();
    const auto delta_add = [this](component_id id, std::uint8_t kills) {
        if ((delta_member_[id] & kills) == kills) {
            return;
        }
        if (delta_member_[id] == 0) {
            delta_list_.push_back(id);
        }
        delta_member_[id] |= kills;
    };
    delta_list_.clear();
    constexpr std::uint8_t core = delta_kills_clean | delta_kills_semi;
    for (std::size_t i = 0; i < plan.hosts.size(); ++i) {
        if (bound_hosts_[i] == plan.hosts[i]) {
            continue;
        }
        for (const node_id host : {bound_hosts_[i], plan.hosts[i]}) {
            delta_add(host, core);
            if (forest != nullptr) {
                for (const component_id dep : forest->dependencies_of(host)) {
                    delta_add(dep, core);
                }
            }
            for (const component_id id : support_->host_attachment(host)) {
                delta_add(id, delta_kills_semi);
            }
        }
    }

    // Retain clean/semi, delta-disjoint entries; tombstone the rest.
    // Tombstones keep probe chains intact and are reused by later
    // insertions; live + dead together never exceed max_entries_, so probes
    // stay bounded.
    std::size_t retained = 0;
    std::size_t write = 0;
    for (const std::uint32_t index : live_slots_) {
        slot& s = slots_[index];
        bool keep = (s.flags & (slot_clean | slot_semi)) != 0;
        if (keep) {
            const std::uint8_t kills = (s.flags & slot_clean) != 0
                                           ? delta_kills_clean
                                           : delta_kills_semi;
            const component_id* key = key_pool_.data() + s.key_begin;
            for (std::uint32_t i = 0; i < s.key_length; ++i) {
                if ((delta_member_[key[i]] & kills) != 0) {
                    keep = false;
                    break;
                }
            }
        }
        if (keep) {
            s.flags |= slot_retained;
            live_slots_[write++] = index;
            ++retained;
        } else {
            s.flags |= slot_dead;
            --size_;
            ++dead_count_;
        }
    }
    live_slots_.resize(write);
    for (const component_id id : delta_list_) {
        delta_member_[id] = 0;
    }
    stats_.retained_entries += retained;
    RECLOUD_COUNTER_ADD("cache.retained_entries", retained);
    if (size_ == 0) {
        // Nothing survived (e.g. an oracle that classifies no round as
        // clean): a generation bump beats probing through tombstones.
        reset_table();
    }
    // The empty-class verdict is a pure function of slot-host aliveness
    // only when the all-alive network is fully connected. (An empty key
    // cannot classify semi — attachment components are always in support.)
    if (empty_class_ != round_class::clean) {
        empty_valid_ = false;
    }
}

void verdict_cache::bind(const application& app, const deployment_plan& plan) {
    const std::uint64_t app_fingerprint = application_fingerprint(app);
    if (bound_ && bound_app_fingerprint_ == app_fingerprint &&
        bound_hosts_ == plan.hosts) {
        return;  // same binding: keep every entry warm
    }
    RECLOUD_SPAN("cache.rebind");
    RECLOUD_COUNTER_INC("cache.rebinds");
    ++stats_.rebinds;
    // Warm path requires the same application shape (fingerprint equality
    // implies equal host-list lengths) and a key arena below its soft
    // limit; anything else falls back to the epoch-wipe.
    if (cross_plan_ && bound_ && bound_app_fingerprint_ == app_fingerprint &&
        key_pool_.size() < key_pool_soft_limit()) {
        ++stats_.warm_rebinds;
        warm_rebind(plan);
    } else {
        ++stats_.cold_rebinds;
        reset_table();
        empty_valid_ = false;
    }
    bound_ = true;
    bound_app_fingerprint_ = app_fingerprint;
    bound_hosts_ = plan.hosts;
    pending_store_ = false;

    // Rebuild membership: static support + plan hosts + their fault-tree
    // dependencies.
    const std::span<const std::uint8_t> base = support_->membership();
    std::copy(base.begin(), base.end(), member_.begin());
    support_size_ = support_->static_size();
    bound_additions_.clear();
    const auto add = [this](component_id id) {
        if (member_[id] == 0) {
            member_[id] = 1;
            ++support_size_;
            bound_additions_.push_back(id);
        }
    };
    const fault_tree_forest* forest = support_->forest();
    for (const node_id host : plan.hosts) {
        add(host);
        if (forest != nullptr) {
            for (const component_id dep : forest->dependencies_of(host)) {
                add(dep);
            }
        }
    }
    stats_.support_size = support_size_;
}

std::size_t verdict_cache::probe(std::uint64_t hash,
                                 lookup_result* found) const {
    std::size_t index = static_cast<std::size_t>(hash) & mask_;
    std::size_t first_dead = static_cast<std::size_t>(-1);
    for (;;) {
        const slot& s = slots_[index];
        if (s.epoch != epoch_) {
            // Stale or never written: end of the probe chain, miss. Prefer
            // reusing the first tombstone passed on the way (keeps the
            // chain short and returns the slot to the live pool).
            return first_dead != static_cast<std::size_t>(-1) ? first_dead
                                                              : index;
        }
        if ((s.flags & slot_dead) != 0) {
            if (first_dead == static_cast<std::size_t>(-1)) {
                first_dead = index;
            }
        } else if (s.hash == hash && s.key_length == filtered_.size() &&
                   std::equal(filtered_.begin(), filtered_.end(),
                              key_pool_.begin() + s.key_begin)) {
            found->hit = true;
            found->verdict = s.verdict != 0;
            return index;
        }
        index = (index + 1) & mask_;
    }
}

verdict_cache::lookup_result verdict_cache::lookup(
    std::span<const component_id> failed) {
    if (!bound_) {
        throw std::logic_error{"verdict_cache: lookup before bind"};
    }
    ++stats_.rounds;
    filtered_.clear();
    for (const component_id id : failed) {
        if (member_[id] != 0) {
            filtered_.push_back(id);
        }
    }
    if (filtered_.empty()) {
        if (empty_valid_) {
            ++stats_.empty_hits;
            return {true, empty_verdict_};
        }
        ++stats_.misses;
        pending_empty_ = true;
        pending_store_ = true;
        return {};
    }
    std::sort(filtered_.begin(), filtered_.end());
    const std::uint64_t hash = hash_key(filtered_);
    lookup_result result;
    const std::size_t index = probe(hash, &result);
    if (result.hit) {
        ++stats_.hits;
        if ((slots_[index].flags & slot_retained) != 0) {
            ++stats_.cross_plan_hits;
        }
        return result;
    }
    ++stats_.misses;
    pending_empty_ = false;
    pending_store_ = true;
    pending_hash_ = hash;
    pending_slot_ = index;
    return {};
}

void verdict_cache::store(bool verdict, round_class cls) {
    if (!pending_store_) {
        throw std::logic_error{"verdict_cache: store without a pending miss"};
    }
    pending_store_ = false;
    if (pending_empty_) {
        empty_valid_ = true;
        empty_verdict_ = verdict;
        empty_class_ = cls;
        return;
    }
    if (size_ + dead_count_ >= max_entries_) {
        // Bounded memory: wipe wholesale (O(1) via the generation stamp) and
        // let the working set rebuild — plans are assessed for thousands of
        // rounds, so the refill cost amortizes away. Tombstones count too:
        // the live + dead total is what bounds probe-chain length.
        reset_table();
        ++stats_.evictions;
        lookup_result ignored;
        pending_slot_ = probe(pending_hash_, &ignored);
    }
    slot& s = slots_[pending_slot_];
    if (s.epoch == epoch_ && (s.flags & slot_dead) != 0) {
        --dead_count_;  // reviving a tombstone
    }
    live_slots_.push_back(static_cast<std::uint32_t>(pending_slot_));
    s.hash = pending_hash_;
    s.epoch = epoch_;
    s.key_begin = static_cast<std::uint32_t>(key_pool_.size());
    s.key_length = static_cast<std::uint32_t>(filtered_.size());
    s.verdict = verdict ? 1 : 0;
    s.flags = cls == round_class::clean  ? slot_clean
              : cls == round_class::semi ? slot_semi
                                         : 0;
    key_pool_.insert(key_pool_.end(), filtered_.begin(), filtered_.end());
    ++size_;
    ++stats_.insertions;
}

}  // namespace recloud
