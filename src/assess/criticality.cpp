#include "assess/criticality.hpp"

#include <algorithm>

#include "assess/assessor.hpp"
#include "faults/round_state.hpp"
#include "sampling/injection.hpp"

namespace recloud {

criticality_report analyze_criticality(failure_sampler& sampler,
                                       const fault_tree_forest* forest,
                                       std::size_t component_count,
                                       reachability_oracle& oracle,
                                       const application& app,
                                       const deployment_plan& plan,
                                       const std::vector<component_id>& candidates,
                                       const criticality_options& options) {
    criticality_report report;
    round_state rs{component_count, forest};

    // Baseline on the shared random-number stream.
    sampler.reset(options.seed);
    report.baseline =
        assess_deployment(sampler, rs, oracle, app, plan, options.rounds);

    report.entries.reserve(candidates.size());
    for (const component_id candidate : candidates) {
        sampler.reset(options.seed);  // common random numbers
        forced_failure_sampler forced{sampler, {candidate}};
        const assessment_stats conditional = assess_deployment(
            forced, rs, oracle, app, plan, options.rounds);
        criticality_entry entry;
        entry.component = candidate;
        entry.conditional_reliability = conditional.reliability;
        entry.impact = std::max(
            0.0, report.baseline.reliability - conditional.reliability);
        report.entries.push_back(entry);
    }
    std::sort(report.entries.begin(), report.entries.end(),
              [](const criticality_entry& a, const criticality_entry& b) {
                  if (a.impact != b.impact) {
                      return a.impact > b.impact;
                  }
                  return a.component < b.component;
              });
    return report;
}

}  // namespace recloud
