// Pluggable assessment backends — one seam for every way reCloud can turn
// (application, plan, rounds) into assessment_stats.
//
// The paper notes route-and-check "can be performed in parallel via
// MapReduce" (§3.2.1, Figure 12); historically that parallelism lived only
// in the wire-format execution engine (src/exec), while the product path
// (re_cloud::find_deployment -> reliability_assessor) was single-threaded.
// This layer makes assessment a first-class, swappable component:
//
//   * serial_backend   — today's in-process single-threaded assessor;
//   * parallel_backend — partitions rounds into fixed-size batches across a
//     thread pool; every batch samples its OWN forked substream keyed by
//     batch index, so results are bit-identical for any worker count;
//   * engine_backend   — wraps the MapReduce-style assessment_engine
//     (declared in exec/engine.hpp to keep assess/ independent of exec/).
//
// Determinism contract (parallel_backend): stats depend only on the base
// sampler's seed, the backend's batch_rounds, and the sequence of
// assess()/reset_stream() calls — never on the worker count or scheduling.
// This preserves the common-random-numbers guarantee of
// recloud_options::common_random_numbers under parallel assessment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "assess/assessor.hpp"
#include "routing/oracle.hpp"
#include "sampling/sampler.hpp"
#include "util/thread_pool.hpp"

namespace recloud {

class assessment_backend {
public:
    virtual ~assessment_backend() = default;

    /// Runs `rounds` sampling + route-and-check rounds for one plan. The
    /// backend's failure stream(s) continue across calls (fresh randomness
    /// per assessment) until reset_stream() rewinds them.
    [[nodiscard]] virtual assessment_stats assess(const application& app,
                                                  const deployment_plan& plan,
                                                  std::size_t rounds) = 0;

    /// Adaptive-precision assessment: keeps adding rounds until CIW95 drops
    /// to the target or max_rounds is reached (§4.2.4). The default
    /// implementation layers the prediction loop of assess_until_ciw() on
    /// top of assess(), so every backend gets it for free.
    [[nodiscard]] virtual assessment_stats assess_until_ciw(
        const application& app, const deployment_plan& plan,
        const adaptive_assess_options& options);

    /// Rewinds the backend's failure stream(s) to a deterministic point —
    /// the common-random-numbers hook: resetting before each candidate
    /// assessment makes plan comparisons noise-free.
    virtual void reset_stream(std::uint64_t seed) = 0;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// Cumulative verdict-cache counters across every assessment this
    /// backend has run, or nullptr when the backend runs without a cache.
    /// Counters are observability only — they never influence stats.
    [[nodiscard]] virtual const verdict_cache_stats* cache_stats()
        const noexcept {
        return nullptr;
    }

    /// Arms (or, with nullptr, disarms) the request-lifecycle token
    /// (core/run_budget.hpp) every subsequent assessment polls. The token is
    /// borrowed — the caller keeps it alive and disarms before it dies.
    /// When an armed token's wall trigger fires mid-assessment the backend
    /// throws search_preempted with the partial tally discarded; an armed
    /// but never-firing token leaves stats bit-identical to an un-armed run.
    /// Not thread-safe against a concurrent assess() on the SAME backend
    /// (arm between assessments; cancel()/deadlines on the token itself may
    /// fire from any thread).
    void set_budget(const run_budget* budget) noexcept { budget_ = budget; }
    [[nodiscard]] const run_budget* budget() const noexcept { return budget_; }

protected:
    const run_budget* budget_ = nullptr;
};

/// Today's single-threaded path: one sampler stream, one round_state, one
/// oracle, rounds judged in order.
class serial_backend final : public assessment_backend {
public:
    /// `forest` may be nullptr. The oracle and sampler must outlive the
    /// backend; so must `cache_options.support` when the cache is enabled.
    serial_backend(std::size_t component_count, const fault_tree_forest* forest,
                   reachability_oracle& oracle, failure_sampler& sampler,
                   const verdict_cache_options& cache_options = {});

    [[nodiscard]] assessment_stats assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds) override;
    [[nodiscard]] assessment_stats assess_until_ciw(
        const application& app, const deployment_plan& plan,
        const adaptive_assess_options& options) override;
    void reset_stream(std::uint64_t seed) override;
    [[nodiscard]] const char* name() const noexcept override { return "serial"; }
    [[nodiscard]] const verdict_cache_stats* cache_stats()
        const noexcept override {
        return assessor_.cache_stats();
    }

private:
    reliability_assessor assessor_;
    failure_sampler* sampler_;
    reachability_oracle* oracle_;
};

struct parallel_backend_options {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    std::size_t threads = 0;
    /// Rounds per substream batch — the deterministic work unit. Part of the
    /// determinism contract: changing it changes which substream samples
    /// which round, so it must be held fixed when comparing runs.
    std::size_t batch_rounds = 1024;
    /// Per-worker verdict memoization. Each worker owns a PRIVATE cache —
    /// no shared mutable state, so the determinism contract is untouched
    /// (verdicts are pure functions of the sampled failed set; a cache hit
    /// returns the same bit the re-computation would).
    verdict_cache_options verdict_cache{};
};

/// Deterministic multi-threaded backend. Rounds are partitioned into
/// fixed-size batches; batch b of assessment epoch e is sampled from
/// base_sampler.fork(substream_id(e, b)) regardless of which worker runs it,
/// and per-batch (reliable, rounds) counts are summed — so any worker count
/// produces bit-identical stats. Each worker owns its route-and-check
/// context (round_state + oracle from the factory + evaluator).
class parallel_backend final : public assessment_backend {
public:
    /// `forest` may be nullptr; the sampler must outlive the backend and
    /// support fork() (throws std::invalid_argument otherwise). The factory
    /// is invoked once per worker at construction.
    parallel_backend(std::size_t component_count, const fault_tree_forest* forest,
                     oracle_factory make_oracle, failure_sampler& sampler,
                     const parallel_backend_options& options = {});

    [[nodiscard]] assessment_stats assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds) override;
    void reset_stream(std::uint64_t seed) override;
    [[nodiscard]] const char* name() const noexcept override { return "parallel"; }
    /// Sums the per-worker cache counters on demand (the caches are private
    /// to their workers; only read this between assess() calls).
    [[nodiscard]] const verdict_cache_stats* cache_stats()
        const noexcept override;

    [[nodiscard]] std::size_t workers() const noexcept { return pool_.size(); }
    [[nodiscard]] std::size_t batch_rounds() const noexcept {
        return options_.batch_rounds;
    }

    /// The substream id of batch `batch` within assessment `epoch` (1-based;
    /// the first assess() after construction or reset_stream() is epoch 1).
    /// Exposed so tests can reproduce the exact streams serially.
    [[nodiscard]] static constexpr std::uint64_t substream_id(
        std::uint64_t epoch, std::uint64_t batch) noexcept {
        return (epoch << 32) + batch;
    }

private:
    struct worker_context {
        round_state rs;
        std::unique_ptr<reachability_oracle> oracle;
        std::optional<verdict_cache> cache;  ///< private to this worker

        worker_context(std::size_t component_count,
                       const fault_tree_forest* forest,
                       std::unique_ptr<reachability_oracle> o,
                       const verdict_cache_options& cache_options)
            : rs(component_count, forest), oracle(std::move(o)) {
            if (cache_options.enabled && cache_options.support != nullptr) {
                cache.emplace(*cache_options.support, cache_options.max_entries,
                              cache_options.cross_plan);
            }
        }
    };

    failure_sampler* sampler_;
    parallel_backend_options options_;
    thread_pool pool_;
    std::vector<std::unique_ptr<worker_context>> contexts_;
    std::uint64_t epoch_ = 0;  ///< assessments since construction/reset
    mutable verdict_cache_stats cache_stats_{};  ///< scratch for cache_stats()
};

}  // namespace recloud
