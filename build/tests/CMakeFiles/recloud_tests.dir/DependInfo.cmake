
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_assess.cpp" "tests/CMakeFiles/recloud_tests.dir/test_adaptive_assess.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_adaptive_assess.cpp.o.d"
  "/root/repo/tests/test_annealing.cpp" "tests/CMakeFiles/recloud_tests.dir/test_annealing.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_annealing.cpp.o.d"
  "/root/repo/tests/test_application.cpp" "tests/CMakeFiles/recloud_tests.dir/test_application.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_application.cpp.o.d"
  "/root/repo/tests/test_assessor.cpp" "tests/CMakeFiles/recloud_tests.dir/test_assessor.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_assessor.cpp.o.d"
  "/root/repo/tests/test_bcube.cpp" "tests/CMakeFiles/recloud_tests.dir/test_bcube.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_bcube.cpp.o.d"
  "/root/repo/tests/test_common_practice.cpp" "tests/CMakeFiles/recloud_tests.dir/test_common_practice.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_common_practice.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/recloud_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_crn.cpp" "tests/CMakeFiles/recloud_tests.dir/test_crn.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_crn.cpp.o.d"
  "/root/repo/tests/test_cvss.cpp" "tests/CMakeFiles/recloud_tests.dir/test_cvss.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_cvss.cpp.o.d"
  "/root/repo/tests/test_dcell.cpp" "tests/CMakeFiles/recloud_tests.dir/test_dcell.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_dcell.cpp.o.d"
  "/root/repo/tests/test_deps.cpp" "tests/CMakeFiles/recloud_tests.dir/test_deps.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_deps.cpp.o.d"
  "/root/repo/tests/test_downtime.cpp" "tests/CMakeFiles/recloud_tests.dir/test_downtime.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_downtime.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/recloud_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_exact.cpp" "tests/CMakeFiles/recloud_tests.dir/test_exact.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_exact.cpp.o.d"
  "/root/repo/tests/test_facade_extras.cpp" "tests/CMakeFiles/recloud_tests.dir/test_facade_extras.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_facade_extras.cpp.o.d"
  "/root/repo/tests/test_fat_tree.cpp" "tests/CMakeFiles/recloud_tests.dir/test_fat_tree.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_fat_tree.cpp.o.d"
  "/root/repo/tests/test_fault_tree.cpp" "tests/CMakeFiles/recloud_tests.dir/test_fault_tree.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_fault_tree.cpp.o.d"
  "/root/repo/tests/test_fault_tree_probability.cpp" "tests/CMakeFiles/recloud_tests.dir/test_fault_tree_probability.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_fault_tree_probability.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/recloud_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_infra_links.cpp" "tests/CMakeFiles/recloud_tests.dir/test_infra_links.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_infra_links.cpp.o.d"
  "/root/repo/tests/test_injection.cpp" "tests/CMakeFiles/recloud_tests.dir/test_injection.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_injection.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/recloud_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_links.cpp" "tests/CMakeFiles/recloud_tests.dir/test_links.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_links.cpp.o.d"
  "/root/repo/tests/test_neighbor.cpp" "tests/CMakeFiles/recloud_tests.dir/test_neighbor.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_neighbor.cpp.o.d"
  "/root/repo/tests/test_oracle_properties.cpp" "tests/CMakeFiles/recloud_tests.dir/test_oracle_properties.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_oracle_properties.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/recloud_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_probability_model.cpp" "tests/CMakeFiles/recloud_tests.dir/test_probability_model.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_probability_model.cpp.o.d"
  "/root/repo/tests/test_recloud.cpp" "tests/CMakeFiles/recloud_tests.dir/test_recloud.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_recloud.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/recloud_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_requirement_eval.cpp" "tests/CMakeFiles/recloud_tests.dir/test_requirement_eval.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_requirement_eval.cpp.o.d"
  "/root/repo/tests/test_resource_constraints.cpp" "tests/CMakeFiles/recloud_tests.dir/test_resource_constraints.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_resource_constraints.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/recloud_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_round_state.cpp" "tests/CMakeFiles/recloud_tests.dir/test_round_state.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_round_state.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/recloud_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/recloud_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/recloud_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/recloud_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stopwatch.cpp" "tests/CMakeFiles/recloud_tests.dir/test_stopwatch.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_stopwatch.cpp.o.d"
  "/root/repo/tests/test_symmetry.cpp" "tests/CMakeFiles/recloud_tests.dir/test_symmetry.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_symmetry.cpp.o.d"
  "/root/repo/tests/test_symmetry_semantics.cpp" "tests/CMakeFiles/recloud_tests.dir/test_symmetry_semantics.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_symmetry_semantics.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/recloud_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_topologies.cpp" "tests/CMakeFiles/recloud_tests.dir/test_topologies.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_topologies.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/recloud_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/recloud_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/recloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
