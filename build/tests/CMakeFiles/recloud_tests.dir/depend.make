# Empty dependencies file for recloud_tests.
# This may be replaced when dependencies are built.
