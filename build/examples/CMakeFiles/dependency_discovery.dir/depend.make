# Empty dependencies file for dependency_discovery.
# This may be replaced when dependencies are built.
