# Empty compiler generated dependencies file for blast_radius.
# This may be replaced when dependencies are built.
