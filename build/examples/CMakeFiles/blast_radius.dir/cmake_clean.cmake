file(REMOVE_RECURSE
  "CMakeFiles/blast_radius.dir/blast_radius.cpp.o"
  "CMakeFiles/blast_radius.dir/blast_radius.cpp.o.d"
  "blast_radius"
  "blast_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
