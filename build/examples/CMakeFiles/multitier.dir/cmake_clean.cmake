file(REMOVE_RECURSE
  "CMakeFiles/multitier.dir/multitier.cpp.o"
  "CMakeFiles/multitier.dir/multitier.cpp.o.d"
  "multitier"
  "multitier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
