# Empty compiler generated dependencies file for multitier.
# This may be replaced when dependencies are built.
