file(REMOVE_RECURSE
  "CMakeFiles/recloud_cli.dir/recloud_cli.cpp.o"
  "CMakeFiles/recloud_cli.dir/recloud_cli.cpp.o.d"
  "recloud_cli"
  "recloud_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recloud_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
