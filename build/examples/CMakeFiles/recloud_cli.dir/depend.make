# Empty dependencies file for recloud_cli.
# This may be replaced when dependencies are built.
