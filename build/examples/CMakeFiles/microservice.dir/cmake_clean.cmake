file(REMOVE_RECURSE
  "CMakeFiles/microservice.dir/microservice.cpp.o"
  "CMakeFiles/microservice.dir/microservice.cpp.o.d"
  "microservice"
  "microservice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
