# Empty dependencies file for microservice.
# This may be replaced when dependencies are built.
