file(REMOVE_RECURSE
  "librecloud.a"
)
