
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/application.cpp" "src/CMakeFiles/recloud.dir/app/application.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/app/application.cpp.o.d"
  "/root/repo/src/app/deployment.cpp" "src/CMakeFiles/recloud.dir/app/deployment.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/app/deployment.cpp.o.d"
  "/root/repo/src/app/requirement_eval.cpp" "src/CMakeFiles/recloud.dir/app/requirement_eval.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/app/requirement_eval.cpp.o.d"
  "/root/repo/src/assess/assessor.cpp" "src/CMakeFiles/recloud.dir/assess/assessor.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/assess/assessor.cpp.o.d"
  "/root/repo/src/assess/criticality.cpp" "src/CMakeFiles/recloud.dir/assess/criticality.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/assess/criticality.cpp.o.d"
  "/root/repo/src/assess/downtime.cpp" "src/CMakeFiles/recloud.dir/assess/downtime.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/assess/downtime.cpp.o.d"
  "/root/repo/src/assess/exact.cpp" "src/CMakeFiles/recloud.dir/assess/exact.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/assess/exact.cpp.o.d"
  "/root/repo/src/core/recloud.cpp" "src/CMakeFiles/recloud.dir/core/recloud.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/core/recloud.cpp.o.d"
  "/root/repo/src/deps/hardware_inventory.cpp" "src/CMakeFiles/recloud.dir/deps/hardware_inventory.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/deps/hardware_inventory.cpp.o.d"
  "/root/repo/src/deps/network_deps.cpp" "src/CMakeFiles/recloud.dir/deps/network_deps.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/deps/network_deps.cpp.o.d"
  "/root/repo/src/deps/software_deps.cpp" "src/CMakeFiles/recloud.dir/deps/software_deps.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/deps/software_deps.cpp.o.d"
  "/root/repo/src/exec/engine.cpp" "src/CMakeFiles/recloud.dir/exec/engine.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/exec/engine.cpp.o.d"
  "/root/repo/src/faults/component_registry.cpp" "src/CMakeFiles/recloud.dir/faults/component_registry.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/faults/component_registry.cpp.o.d"
  "/root/repo/src/faults/cvss.cpp" "src/CMakeFiles/recloud.dir/faults/cvss.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/faults/cvss.cpp.o.d"
  "/root/repo/src/faults/fault_tree.cpp" "src/CMakeFiles/recloud.dir/faults/fault_tree.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/faults/fault_tree.cpp.o.d"
  "/root/repo/src/faults/probability_model.cpp" "src/CMakeFiles/recloud.dir/faults/probability_model.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/faults/probability_model.cpp.o.d"
  "/root/repo/src/report/report.cpp" "src/CMakeFiles/recloud.dir/report/report.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/report/report.cpp.o.d"
  "/root/repo/src/routing/bfs_reachability.cpp" "src/CMakeFiles/recloud.dir/routing/bfs_reachability.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/routing/bfs_reachability.cpp.o.d"
  "/root/repo/src/routing/fat_tree_routing.cpp" "src/CMakeFiles/recloud.dir/routing/fat_tree_routing.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/routing/fat_tree_routing.cpp.o.d"
  "/root/repo/src/sampling/antithetic.cpp" "src/CMakeFiles/recloud.dir/sampling/antithetic.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/sampling/antithetic.cpp.o.d"
  "/root/repo/src/sampling/dagger.cpp" "src/CMakeFiles/recloud.dir/sampling/dagger.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/sampling/dagger.cpp.o.d"
  "/root/repo/src/sampling/extended_dagger.cpp" "src/CMakeFiles/recloud.dir/sampling/extended_dagger.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/sampling/extended_dagger.cpp.o.d"
  "/root/repo/src/sampling/injection.cpp" "src/CMakeFiles/recloud.dir/sampling/injection.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/sampling/injection.cpp.o.d"
  "/root/repo/src/sampling/monte_carlo.cpp" "src/CMakeFiles/recloud.dir/sampling/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/sampling/monte_carlo.cpp.o.d"
  "/root/repo/src/sampling/result_stats.cpp" "src/CMakeFiles/recloud.dir/sampling/result_stats.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/sampling/result_stats.cpp.o.d"
  "/root/repo/src/search/annealing.cpp" "src/CMakeFiles/recloud.dir/search/annealing.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/search/annealing.cpp.o.d"
  "/root/repo/src/search/common_practice.cpp" "src/CMakeFiles/recloud.dir/search/common_practice.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/search/common_practice.cpp.o.d"
  "/root/repo/src/search/neighbor.cpp" "src/CMakeFiles/recloud.dir/search/neighbor.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/search/neighbor.cpp.o.d"
  "/root/repo/src/search/objective.cpp" "src/CMakeFiles/recloud.dir/search/objective.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/search/objective.cpp.o.d"
  "/root/repo/src/search/symmetry.cpp" "src/CMakeFiles/recloud.dir/search/symmetry.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/search/symmetry.cpp.o.d"
  "/root/repo/src/search/workload.cpp" "src/CMakeFiles/recloud.dir/search/workload.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/search/workload.cpp.o.d"
  "/root/repo/src/topology/bcube.cpp" "src/CMakeFiles/recloud.dir/topology/bcube.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/bcube.cpp.o.d"
  "/root/repo/src/topology/dcell.cpp" "src/CMakeFiles/recloud.dir/topology/dcell.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/dcell.cpp.o.d"
  "/root/repo/src/topology/fat_tree.cpp" "src/CMakeFiles/recloud.dir/topology/fat_tree.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/fat_tree.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/CMakeFiles/recloud.dir/topology/graph.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/graph.cpp.o.d"
  "/root/repo/src/topology/jellyfish.cpp" "src/CMakeFiles/recloud.dir/topology/jellyfish.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/jellyfish.cpp.o.d"
  "/root/repo/src/topology/leaf_spine.cpp" "src/CMakeFiles/recloud.dir/topology/leaf_spine.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/leaf_spine.cpp.o.d"
  "/root/repo/src/topology/links.cpp" "src/CMakeFiles/recloud.dir/topology/links.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/links.cpp.o.d"
  "/root/repo/src/topology/power.cpp" "src/CMakeFiles/recloud.dir/topology/power.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/power.cpp.o.d"
  "/root/repo/src/topology/stats.cpp" "src/CMakeFiles/recloud.dir/topology/stats.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/stats.cpp.o.d"
  "/root/repo/src/topology/vl2.cpp" "src/CMakeFiles/recloud.dir/topology/vl2.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/topology/vl2.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/recloud.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/util/config.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/recloud.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/serialize.cpp" "src/CMakeFiles/recloud.dir/util/serialize.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/util/serialize.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/recloud.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/stopwatch.cpp" "src/CMakeFiles/recloud.dir/util/stopwatch.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/util/stopwatch.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/recloud.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/recloud.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
