# Empty dependencies file for recloud.
# This may be replaced when dependencies are built.
