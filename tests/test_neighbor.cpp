#include "search/neighbor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/fat_tree.hpp"

namespace recloud {
namespace {

bool all_distinct(const std::vector<node_id>& hosts) {
    const std::set<node_id> unique(hosts.begin(), hosts.end());
    return unique.size() == hosts.size();
}

bool all_are_hosts(const built_topology& topo, const std::vector<node_id>& hosts) {
    return std::all_of(hosts.begin(), hosts.end(), [&](node_id h) {
        return topo.graph.kind(h) == node_kind::host;
    });
}

TEST(Neighbor, InitialPlanHasDistinctValidHosts) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 1};
    for (int trial = 0; trial < 20; ++trial) {
        const deployment_plan plan = gen.initial_plan(5);
        EXPECT_EQ(plan.hosts.size(), 5u);
        EXPECT_TRUE(all_distinct(plan.hosts));
        EXPECT_TRUE(all_are_hosts(ft.topology(), plan.hosts));
    }
}

TEST(Neighbor, RackAntiAffinityUsesDistinctRacks) {
    const fat_tree ft = fat_tree::build(8);  // 28 racks, plenty for 5
    neighbor_generator gen{ft.topology(), anti_affinity::rack, 2};
    for (int trial = 0; trial < 20; ++trial) {
        const deployment_plan plan = gen.initial_plan(5);
        std::set<node_id> racks;
        for (const node_id h : plan.hosts) {
            racks.insert(rack_of(ft.topology().graph, h));
        }
        EXPECT_EQ(racks.size(), 5u);
    }
}

TEST(Neighbor, RackAffinityRelaxesWhenImpossible) {
    // k=4: 3 pods x 2 racks = 6 racks but 12 hosts; asking for 8 instances
    // cannot keep racks distinct — must still produce a valid plan.
    const fat_tree ft = fat_tree::build(4);
    neighbor_generator gen{ft.topology(), anti_affinity::rack, 3};
    const deployment_plan plan = gen.initial_plan(8);
    EXPECT_EQ(plan.hosts.size(), 8u);
    EXPECT_TRUE(all_distinct(plan.hosts));
}

TEST(Neighbor, NeighborChangesExactlyOneSlot) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 4};
    const deployment_plan current = gen.initial_plan(5);
    for (int trial = 0; trial < 50; ++trial) {
        const deployment_plan next = gen.neighbor_of(current);
        ASSERT_EQ(next.hosts.size(), current.hosts.size());
        int differing = 0;
        for (std::size_t i = 0; i < next.hosts.size(); ++i) {
            differing += next.hosts[i] != current.hosts[i] ? 1 : 0;
        }
        EXPECT_EQ(differing, 1);
        EXPECT_TRUE(all_distinct(next.hosts));
    }
}

TEST(Neighbor, NeighborPreservesRackAffinityWhenFeasible) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::rack, 5};
    deployment_plan plan = gen.initial_plan(4);
    for (int step = 0; step < 30; ++step) {
        plan = gen.neighbor_of(plan);
        std::set<node_id> racks;
        for (const node_id h : plan.hosts) {
            racks.insert(rack_of(ft.topology().graph, h));
        }
        EXPECT_EQ(racks.size(), plan.hosts.size());
    }
}

TEST(Neighbor, DeterministicPerSeed) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator a{ft.topology(), anti_affinity::none, 42};
    neighbor_generator b{ft.topology(), anti_affinity::none, 42};
    const deployment_plan pa = a.initial_plan(5);
    const deployment_plan pb = b.initial_plan(5);
    EXPECT_EQ(pa, pb);
    EXPECT_EQ(a.neighbor_of(pa), b.neighbor_of(pb));
}

TEST(Neighbor, InstanceCountValidation) {
    const fat_tree ft = fat_tree::build(4);  // 12 hosts
    neighbor_generator gen{ft.topology(), anti_affinity::none, 6};
    EXPECT_THROW((void)gen.initial_plan(0), std::invalid_argument);
    EXPECT_THROW((void)gen.initial_plan(13), std::invalid_argument);
    EXPECT_NO_THROW((void)gen.initial_plan(12));
}

TEST(Neighbor, NeighborOfFullPlanRejected) {
    const fat_tree ft = fat_tree::build(4);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 7};
    const deployment_plan full = gen.initial_plan(12);
    EXPECT_THROW((void)gen.neighbor_of(full), std::invalid_argument);
    deployment_plan empty;
    EXPECT_THROW((void)gen.neighbor_of(empty), std::invalid_argument);
}

}  // namespace
}  // namespace recloud
