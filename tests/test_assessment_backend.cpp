// The pluggable assessment-backend layer (assess/backend.hpp): serial /
// parallel / engine backends agree with the historic paths, and the
// parallel backend is bit-deterministic for any worker count — the property
// that lets re_cloud keep its common-random-numbers guarantee while using
// every core.
#include "assess/backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/requirement_eval.hpp"
#include "assess/assessor.hpp"
#include "core/recloud.hpp"
#include "exec/engine.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/injection.hpp"
#include "sampling/result_stats.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

struct backend_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};

    backend_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, 0.03);
            }
        }
    }

    oracle_factory factory() {
        return [this] { return std::make_unique<bfs_reachability>(topo); };
    }

    deployment_plan plan_for(const application& app) {
        deployment_plan plan;
        for (std::uint32_t i = 0; i < app.total_instances(); ++i) {
            plan.hosts.push_back(topo.hosts[(i * 5) % topo.hosts.size()]);
        }
        return plan;
    }
};

TEST(SerialBackend, MatchesFreeFunctionExactly) {
    backend_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);

    extended_dagger_sampler reference_sampler{f.registry.probabilities(), 21};
    round_state rs{f.registry.size(), &f.forest};
    bfs_reachability oracle{f.topo};
    const assessment_stats expected =
        assess_deployment(reference_sampler, rs, oracle, app, plan, 3000);

    extended_dagger_sampler sampler{f.registry.probabilities(), 21};
    bfs_reachability backend_oracle{f.topo};
    serial_backend backend{f.registry.size(), &f.forest, backend_oracle, sampler};
    const assessment_stats actual = backend.assess(app, plan, 3000);
    EXPECT_EQ(actual.rounds, expected.rounds);
    EXPECT_EQ(actual.reliable, expected.reliable);
}

TEST(ParallelBackend, BitIdenticalAcrossWorkerCounts) {
    backend_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);

    std::vector<assessment_stats> results;
    for (const std::size_t workers : {1u, 2u, 8u}) {
        extended_dagger_sampler sampler{f.registry.probabilities(), 33};
        parallel_backend backend{f.registry.size(), &f.forest, f.factory(),
                                 sampler,
                                 {.threads = workers, .batch_rounds = 250}};
        results.push_back(backend.assess(app, plan, 3000));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].rounds, results[0].rounds);
        EXPECT_EQ(results[i].reliable, results[0].reliable);
        EXPECT_EQ(results[i].reliability, results[0].reliability);
        EXPECT_EQ(results[i].variance, results[0].variance);
        EXPECT_EQ(results[i].ciw95, results[0].ciw95);
    }
}

TEST(ParallelBackend, ConsecutiveAssessmentsStayDeterministic) {
    // Epochs advance the substream ids: assessment k must use fresh
    // randomness, but the SEQUENCE of assessments must replay identically
    // for any worker count.
    backend_fixture f;
    const application app = application::k_of_n(1, 2);
    const deployment_plan plan = f.plan_for(app);

    const auto run_sequence = [&](std::size_t workers) {
        extended_dagger_sampler sampler{f.registry.probabilities(), 5};
        parallel_backend backend{f.registry.size(), &f.forest, f.factory(),
                                 sampler,
                                 {.threads = workers, .batch_rounds = 128}};
        std::vector<std::size_t> reliable;
        for (int k = 0; k < 3; ++k) {
            reliable.push_back(backend.assess(app, plan, 1000).reliable);
        }
        return reliable;
    };
    const auto a = run_sequence(1);
    const auto b = run_sequence(4);
    EXPECT_EQ(a, b);
    // Different epochs sample different streams (fresh randomness per call).
    EXPECT_FALSE(a[0] == a[1] && a[1] == a[2]) << "suspiciously frozen stream";
}

TEST(ParallelBackend, MatchesSerialRouteAndCheckOnSameForkedStreams) {
    // Reproduce the backend's exact work serially through the documented
    // substream contract: batch b of epoch 1 draws fork(substream_id(1, b)).
    backend_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    const std::size_t rounds = 1000;
    const std::size_t batch_rounds = 256;

    extended_dagger_sampler sampler{f.registry.probabilities(), 77};
    parallel_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                             {.threads = 3, .batch_rounds = batch_rounds}};
    const assessment_stats parallel = backend.assess(app, plan, rounds);

    extended_dagger_sampler base{f.registry.probabilities(), 77};
    round_state rs{f.registry.size(), &f.forest};
    bfs_reachability oracle{f.topo};
    requirement_evaluator evaluator{app, plan};
    result_accumulator acc;
    std::vector<component_id> failed;
    const std::size_t batches = (rounds + batch_rounds - 1) / batch_rounds;
    for (std::size_t b = 0; b < batches; ++b) {
        const auto substream = base.fork(parallel_backend::substream_id(1, b));
        ASSERT_NE(substream, nullptr);
        const std::size_t count =
            std::min(batch_rounds, rounds - b * batch_rounds);
        for (std::size_t i = 0; i < count; ++i) {
            substream->next_round(failed);
            rs.begin_round(failed);
            oracle.begin_round(rs);
            acc.add(evaluator.reliable_in_round(oracle, rs));
        }
    }
    const assessment_stats serial = acc.stats();
    EXPECT_EQ(parallel.rounds, serial.rounds);
    EXPECT_EQ(parallel.reliable, serial.reliable);
}

TEST(ParallelBackend, ResetStreamReplaysAssessments) {
    backend_fixture f;
    const application app = application::k_of_n(1, 2);
    const deployment_plan plan = f.plan_for(app);
    extended_dagger_sampler sampler{f.registry.probabilities(), 13};
    parallel_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                             {.threads = 2, .batch_rounds = 100}};
    const assessment_stats first = backend.assess(app, plan, 1500);
    backend.reset_stream(13);
    const assessment_stats replay = backend.assess(app, plan, 1500);
    EXPECT_EQ(first.reliable, replay.reliable);
    EXPECT_EQ(first.rounds, replay.rounds);
}

TEST(ParallelBackend, HandlesRoundCountEdgeCases) {
    backend_fixture f;
    const application app = application::k_of_n(1, 1);
    const deployment_plan plan = f.plan_for(app);
    extended_dagger_sampler sampler{f.registry.probabilities(), 3};
    parallel_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                             {.threads = 4, .batch_rounds = 64}};
    EXPECT_EQ(backend.assess(app, plan, 0).rounds, 0u);
    EXPECT_EQ(backend.assess(app, plan, 1).rounds, 1u);       // fewer than workers
    EXPECT_EQ(backend.assess(app, plan, 1000).rounds, 1000u); // not divisible
}

TEST(ParallelBackend, RejectsNonForkableSampler) {
    backend_fixture f;
    scripted_sampler scripted{{{0}, {1}}};
    EXPECT_THROW(
        parallel_backend(f.registry.size(), &f.forest, f.factory(), scripted, {}),
        std::invalid_argument);
}

TEST(ParallelBackend, RejectsZeroBatchRounds) {
    backend_fixture f;
    extended_dagger_sampler sampler{f.registry.probabilities(), 3};
    EXPECT_THROW(parallel_backend(f.registry.size(), &f.forest, f.factory(),
                                  sampler, {.threads = 2, .batch_rounds = 0}),
                 std::invalid_argument);
}

TEST(ParallelBackend, AdaptiveAssessmentReachesTarget) {
    // The base-class assess_until_ciw() layers adaptive precision on any
    // backend; with the parallel one it must still converge and report
    // cumulative rounds.
    backend_fixture f;
    const application app = application::k_of_n(1, 3);
    const deployment_plan plan = f.plan_for(app);
    extended_dagger_sampler sampler{f.registry.probabilities(), 41};
    parallel_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                             {.threads = 2, .batch_rounds = 500}};
    adaptive_assess_options options;
    options.target_ciw = 2e-2;
    options.initial_rounds = 500;
    options.max_rounds = 200'000;
    const assessment_stats stats = backend.assess_until_ciw(app, plan, options);
    EXPECT_LE(stats.ciw95, options.target_ciw);
    EXPECT_GE(stats.rounds, 500u);
}

TEST(EngineBackend, MatchesRawAssessmentEngine) {
    backend_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);

    extended_dagger_sampler raw_sampler{f.registry.probabilities(), 19};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             {.workers = 2, .batch_rounds = 200}};
    const assessment_stats expected = engine.assess(raw_sampler, app, plan, 2000);

    extended_dagger_sampler sampler{f.registry.probabilities(), 19};
    engine_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                           {.workers = 2, .batch_rounds = 200}};
    const assessment_stats actual = backend.assess(app, plan, 2000);
    EXPECT_EQ(actual.rounds, expected.rounds);
    EXPECT_EQ(actual.reliable, expected.reliable);
}

TEST(EngineBackend, ResetStreamReplaysAssessments) {
    // The backend holds a non-owning sampler pointer (see the lifetime
    // contract on its constructor); reset_stream must reach the *live*
    // sampler and rewind it — the scenario that would explode if the
    // pointer ever dangled.
    backend_fixture f;
    const application app = application::k_of_n(1, 2);
    const deployment_plan plan = f.plan_for(app);
    extended_dagger_sampler sampler{f.registry.probabilities(), 13};
    engine_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                           {.workers = 2, .batch_rounds = 100}};
    const assessment_stats first = backend.assess(app, plan, 1500);
    backend.reset_stream(13);
    const assessment_stats replay = backend.assess(app, plan, 1500);
    EXPECT_EQ(first.reliable, replay.reliable);
    EXPECT_EQ(first.rounds, replay.rounds);
}

// ---- the facade on top of the layer -------------------------------------

recloud_options facade_options(assessment_backend_kind backend,
                               std::size_t threads) {
    recloud_options o;
    o.assessment_rounds = 1000;
    o.max_iterations = 25;
    o.seed = 9;
    o.backend = backend;
    o.assessment_threads = threads;
    o.assessment_batch_rounds = 200;
    return o;
}

TEST(ReCloudBackend, ParallelSearchIsIdenticalForAnyThreadCount) {
    // The flagship property: find_deployment with the parallel backend walks
    // the EXACT same search trajectory whether 1 or 4 threads assess — CRN
    // comparisons, symmetry skips and the final plan all line up.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    const auto run = [&](std::size_t threads) {
        re_cloud system{
            infra, facade_options(assessment_backend_kind::parallel, threads)};
        deployment_request request{application::k_of_n(2, 3), 1.0,
                                   std::chrono::seconds{20}};
        return system.find_deployment(request);
    };
    const deployment_response one = run(1);
    const deployment_response four = run(4);
    EXPECT_EQ(one.plan, four.plan);
    EXPECT_EQ(one.stats.reliability, four.stats.reliability);
    EXPECT_EQ(one.stats.reliable, four.stats.reliable);
    EXPECT_EQ(one.search.plans_evaluated, four.search.plans_evaluated);
    EXPECT_EQ(one.search.plans_generated, four.search.plans_generated);
}

TEST(ReCloudBackend, ParallelAssessAgreesWithConfiguredRounds) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra,
                    facade_options(assessment_backend_kind::parallel, 2)};
    EXPECT_STREQ(system.backend().name(), "parallel");
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {infra.tree().host(0, 0, 0), infra.tree().host(1, 1, 1)};
    const assessment_stats stats = system.assess(app, plan, 2500);
    EXPECT_EQ(stats.rounds, 2500u);
    EXPECT_GT(stats.reliability, 0.5);
}

TEST(ReCloudBackend, EngineBackendRunsTheWorkflow) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, facade_options(assessment_backend_kind::engine, 2)};
    EXPECT_STREQ(system.backend().name(), "engine");
    deployment_request request{application::k_of_n(2, 3), 1.0,
                               std::chrono::seconds{20}};
    const deployment_response response = system.find_deployment(request);
    EXPECT_EQ(response.plan.hosts.size(), 3u);
    EXPECT_GT(response.stats.reliability, 0.5);
}

TEST(ReCloudBackend, EngineStreamSurvivesSearchEpochs) {
    // re_cloud owns the sampler in a member declared before the backend, so
    // the backend's raw sampler pointer stays valid for the facade's whole
    // life. Exercise the risky sequence: a full search (many reset_stream
    // epochs) followed by fresh standalone assessments through the same
    // backend, with recovery stats flowing the whole way.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, facade_options(assessment_backend_kind::engine, 2)};
    deployment_request request{application::k_of_n(2, 3), 1.0,
                               std::chrono::seconds{20}};
    const deployment_response response = system.find_deployment(request);
    EXPECT_EQ(response.plan.hosts.size(), 3u);

    const assessment_stats after =
        system.assess(request.app, response.plan, 2000);
    EXPECT_EQ(after.rounds, 2000u);
    EXPECT_GT(after.reliability, 0.5);

    ASSERT_NE(system.execution_stats(), nullptr);
    EXPECT_GT(system.execution_stats()->batches, 0u);
    EXPECT_GT(system.execution_stats()->bytes_received, 0u);
    // Non-engine backends expose no execution stats.
    re_cloud parallel_system{
        infra, facade_options(assessment_backend_kind::parallel, 2)};
    EXPECT_EQ(parallel_system.execution_stats(), nullptr);
}

TEST(ReCloudBackend, SerialAndParallelSearchesAgreeOnPlanShape) {
    // Different backends sample different streams, so scores differ — but
    // both must return valid, fully-placed plans under the same options.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    for (const auto kind : {assessment_backend_kind::serial,
                            assessment_backend_kind::parallel}) {
        re_cloud system{infra, facade_options(kind, 2)};
        deployment_request request{application::k_of_n(2, 3), 1.0,
                                   std::chrono::seconds{20}};
        const deployment_response response = system.find_deployment(request);
        EXPECT_EQ(response.plan.hosts.size(), 3u);
        EXPECT_GT(response.stats.reliability, 0.5);
    }
}

}  // namespace
}  // namespace recloud
