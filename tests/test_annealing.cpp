#include "search/annealing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "topology/fat_tree.hpp"

namespace recloud {
namespace {

/// Synthetic plan scorer: reliability grows with placement diversity (number
/// of distinct pods used), a fast stand-in for the real assessor that keeps
/// the search behaviour fully deterministic and testable.
struct diversity_scorer {
    const fat_tree* ft;

    plan_evaluation operator()(const deployment_plan& plan) const {
        std::set<int> pods;
        for (const node_id h : plan.hosts) {
            pods.insert(ft->pod_of_host(h));
        }
        const double diversity =
            static_cast<double>(pods.size()) / static_cast<double>(plan.hosts.size());
        plan_evaluation eval;
        // Map diversity in (0, 1] to reliability in [0.9, 0.9999].
        eval.stats = make_assessment_stats(
            static_cast<std::size_t>((0.9 + 0.0999 * diversity) * 10000), 10000);
        eval.score = eval.stats.reliability;
        return eval;
    }
};

annealing_options quick_options() {
    annealing_options o;
    o.max_time = std::chrono::milliseconds{300};
    o.max_iterations = 3000;
    o.seed = 7;
    o.use_symmetry = false;
    return o;
}

TEST(AcceptanceDelta, LogRatioAmplifiesOrdersOfMagnitude) {
    // The paper's example: 0.999 vs 0.99 -> delta = log10(10) = 1.
    EXPECT_NEAR(acceptance_delta(0.999, 0.99, delta_mode::log_ratio), 1.0, 1e-9);
    // Classic absolute delta sees only 0.009.
    EXPECT_NEAR(acceptance_delta(0.999, 0.99, delta_mode::absolute), 0.009, 1e-12);
}

TEST(AcceptanceDelta, SymmetricInMagnitude) {
    EXPECT_DOUBLE_EQ(acceptance_delta(0.99, 0.9, delta_mode::log_ratio),
                     acceptance_delta(0.9, 0.99, delta_mode::log_ratio));
}

TEST(AcceptanceDelta, PerfectScoreStaysFinite) {
    const double d = acceptance_delta(1.0, 0.99, delta_mode::log_ratio);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GT(d, 0.0);
}

TEST(Annealing, FindsDiversePlanOnFatTree) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 3};
    const diversity_scorer score{&ft};
    const annealing_result result =
        anneal(gen, score, nullptr, 4, quick_options());
    // 4 instances across >= 3 pods is easy to reach in 3000 iterations.
    std::set<int> pods;
    for (const node_id h : result.best_plan.hosts) {
        pods.insert(ft.pod_of_host(h));
    }
    EXPECT_GE(pods.size(), 3u);
    EXPECT_GT(result.plans_evaluated, 10u);
    EXPECT_EQ(result.best_plan.hosts.size(), 4u);
}

TEST(Annealing, BestScoreIsMonotoneOverTrace) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 4};
    annealing_options options = quick_options();
    options.record_trace = true;
    const annealing_result result =
        anneal(gen, diversity_scorer{&ft}, nullptr, 5, options);
    ASSERT_FALSE(result.trace.empty());
    for (std::size_t i = 1; i < result.trace.size(); ++i) {
        EXPECT_GE(result.trace[i].best_score, result.trace[i - 1].best_score);
        EXPECT_GE(result.trace[i].elapsed_seconds,
                  result.trace[i - 1].elapsed_seconds);
    }
}

TEST(Annealing, DesiredReliabilityStopsEarly) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 5};
    annealing_options options = quick_options();
    options.desired_reliability = 0.5;  // any plan satisfies this
    const annealing_result result =
        anneal(gen, diversity_scorer{&ft}, nullptr, 4, options);
    EXPECT_TRUE(result.fulfilled);
    EXPECT_EQ(result.plans_evaluated, 1u);  // the initial plan sufficed
}

TEST(Annealing, UnreachableDesiredReliabilityReportsUnfulfilled) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 6};
    annealing_options options = quick_options();
    options.desired_reliability = 1.0;  // diversity scorer caps at 0.9999
    options.max_iterations = 200;
    const annealing_result result =
        anneal(gen, diversity_scorer{&ft}, nullptr, 4, options);
    EXPECT_FALSE(result.fulfilled);
    EXPECT_FALSE(result.best_plan.hosts.empty());
}

TEST(Annealing, IterationBudgetIsRespected) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 7};
    annealing_options options = quick_options();
    options.max_iterations = 50;
    options.max_time = std::chrono::seconds{60};
    const annealing_result result =
        anneal(gen, diversity_scorer{&ft}, nullptr, 4, options);
    EXPECT_LE(result.plans_generated, 50u);
}

TEST(Annealing, SymmetrySkipsReduceEvaluations) {
    // With uniform probabilities and the symmetry checker on, many neighbor
    // plans are equivalent and must be skipped without evaluation.
    const fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) != component_kind::external) {
            registry.set_probability(id, 0.01);
        }
    }
    const symmetry_checker checker{ft.topology(), registry, nullptr};
    neighbor_generator gen{ft.topology(), anti_affinity::none, 8};
    annealing_options options = quick_options();
    options.use_symmetry = true;
    options.max_iterations = 500;
    const annealing_result result =
        anneal(gen, diversity_scorer{&ft}, &checker, 4, options);
    EXPECT_GT(result.symmetric_skips, 0u);
    EXPECT_LT(result.plans_evaluated, result.plans_generated);
}

TEST(Annealing, AcceptsSomeWorsePlansEarly) {
    // The whole point of simulated annealing: uphill moves happen.
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 9};
    annealing_options options = quick_options();
    options.max_time = std::chrono::seconds{10};  // keep temperature high
    options.max_iterations = 2000;
    const annealing_result result =
        anneal(gen, diversity_scorer{&ft}, nullptr, 5, options);
    EXPECT_GT(result.accepted_worse, 0u);
}

TEST(Annealing, DeterministicGivenIterationBudget) {
    const fat_tree ft = fat_tree::build(8);
    annealing_options options = quick_options();
    options.max_iterations = 300;
    // Iterations bind first; the huge time budget keeps the temperature
    // effectively constant so timing jitter cannot flip accept decisions.
    options.max_time = std::chrono::hours{10};

    const auto run = [&] {
        neighbor_generator gen{ft.topology(), anti_affinity::none, 11};
        return anneal(gen, diversity_scorer{&ft}, nullptr, 4, options);
    };
    const annealing_result a = run();
    const annealing_result b = run();
    EXPECT_EQ(a.best_plan, b.best_plan);
    EXPECT_EQ(a.plans_evaluated, b.plans_evaluated);
}

}  // namespace
}  // namespace recloud
