#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "sampling/antithetic.hpp"
#include "sampling/dagger.hpp"
#include "util/stats.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/injection.hpp"
#include "sampling/monte_carlo.hpp"
#include "sampling/result_stats.hpp"

namespace recloud {
namespace {

// ---- dagger primitives --------------------------------------------------

TEST(DaggerPlan, CycleLengthIsFloorOfInverse) {
    EXPECT_EQ(make_dagger_plan(0.3).cycle_length, 3u);
    EXPECT_EQ(make_dagger_plan(0.01).cycle_length, 100u);
    EXPECT_EQ(make_dagger_plan(0.5).cycle_length, 2u);
    EXPECT_EQ(make_dagger_plan(0.6).cycle_length, 1u);
    EXPECT_EQ(make_dagger_plan(1.0).cycle_length, 1u);
    EXPECT_EQ(make_dagger_plan(0.0).cycle_length, 0u);
}

TEST(DaggerSlot, PaperFigure3Examples) {
    // Figure 3a: p = 0.3, r = 0.4 -> second subinterval -> slot 1.
    const dagger_plan plan = make_dagger_plan(0.3);
    const auto slot_a = dagger_slot(plan, 0.4);
    ASSERT_TRUE(slot_a.has_value());
    EXPECT_EQ(*slot_a, 1u);
    // Figure 3b: p = 0.3, r = 0.95 -> remainder -> alive all cycle.
    EXPECT_FALSE(dagger_slot(plan, 0.95).has_value());
}

TEST(DaggerSlot, SubintervalBoundaries) {
    const dagger_plan plan = make_dagger_plan(0.25);  // 4 subintervals, no remainder
    EXPECT_EQ(*dagger_slot(plan, 0.0), 0u);
    EXPECT_EQ(*dagger_slot(plan, 0.2499), 0u);
    EXPECT_EQ(*dagger_slot(plan, 0.25), 1u);
    EXPECT_EQ(*dagger_slot(plan, 0.9999), 3u);
}

TEST(DaggerSlot, NeverFailingComponent) {
    const dagger_plan plan = make_dagger_plan(0.0);
    EXPECT_FALSE(dagger_slot(plan, 0.0).has_value());
    EXPECT_FALSE(dagger_slot(plan, 0.999).has_value());
}

// ---- samplers: shared behaviour, parameterized over the sampler kind ----

enum class kind { monte_carlo, extended_dagger, antithetic };

std::unique_ptr<failure_sampler> make(kind k, std::span<const double> probs,
                                      std::uint64_t seed) {
    switch (k) {
        case kind::monte_carlo:
            return std::make_unique<monte_carlo_sampler>(probs, seed);
        case kind::extended_dagger:
            return std::make_unique<extended_dagger_sampler>(probs, seed);
        case kind::antithetic:
            return std::make_unique<antithetic_sampler>(probs, seed);
    }
    return nullptr;
}

class SamplerProperty : public ::testing::TestWithParam<kind> {};

TEST_P(SamplerProperty, EmpiricalFailureRateMatchesProbability) {
    // Components with heterogeneous probabilities; the long-run failure
    // frequency of each must match its probability (dagger sampling is
    // unbiased, §3.2.2).
    const std::vector<double> probs{0.01, 0.05, 0.3, 0.5, 0.0, 0.002};
    auto sampler = make(GetParam(), probs, 42);
    std::vector<std::size_t> failures(probs.size(), 0);
    const std::size_t rounds = 200000;
    std::vector<component_id> failed;
    for (std::size_t r = 0; r < rounds; ++r) {
        sampler->next_round(failed);
        for (const component_id id : failed) {
            ++failures[id];
        }
    }
    for (std::size_t i = 0; i < probs.size(); ++i) {
        const double rate = static_cast<double>(failures[i]) / rounds;
        EXPECT_NEAR(rate, probs[i], 0.01 + probs[i] * 0.05)
            << "component " << i;
    }
}

TEST_P(SamplerProperty, FailedIdsAreValidAndUnique) {
    const std::vector<double> probs(50, 0.2);
    auto sampler = make(GetParam(), probs, 7);
    std::vector<component_id> failed;
    for (int r = 0; r < 500; ++r) {
        sampler->next_round(failed);
        std::vector<component_id> sorted = failed;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
        for (const component_id id : failed) {
            ASSERT_LT(id, probs.size());
        }
    }
}

TEST_P(SamplerProperty, DeterministicPerSeed) {
    const std::vector<double> probs{0.1, 0.2, 0.05};
    auto a = make(GetParam(), probs, 99);
    auto b = make(GetParam(), probs, 99);
    std::vector<component_id> fa;
    std::vector<component_id> fb;
    for (int r = 0; r < 1000; ++r) {
        a->next_round(fa);
        b->next_round(fb);
        ASSERT_EQ(fa, fb) << "round " << r;
    }
}

TEST_P(SamplerProperty, ResetRestartsTheStream) {
    const std::vector<double> probs{0.1, 0.2, 0.05};
    auto sampler = make(GetParam(), probs, 5);
    std::vector<std::vector<component_id>> first;
    std::vector<component_id> failed;
    for (int r = 0; r < 100; ++r) {
        sampler->next_round(failed);
        first.push_back(failed);
    }
    sampler->reset(5);
    for (int r = 0; r < 100; ++r) {
        sampler->next_round(failed);
        ASSERT_EQ(failed, first[r]) << "round " << r;
    }
}

TEST_P(SamplerProperty, ZeroProbabilityNeverFails) {
    const std::vector<double> probs{0.0, 0.5, 0.0};
    auto sampler = make(GetParam(), probs, 3);
    std::vector<component_id> failed;
    for (int r = 0; r < 2000; ++r) {
        sampler->next_round(failed);
        for (const component_id id : failed) {
            EXPECT_EQ(id, 1u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerProperty,
                         ::testing::Values(kind::monte_carlo,
                                           kind::extended_dagger,
                                           kind::antithetic),
                         [](const auto& info) {
                             switch (info.param) {
                                 case kind::monte_carlo: return "monte_carlo";
                                 case kind::extended_dagger:
                                     return "extended_dagger";
                                 case kind::antithetic: return "antithetic";
                             }
                             return "unknown";
                         });

// ---- extended dagger specifics ------------------------------------------

TEST(ExtendedDagger, BlockLengthIsLongestCycle) {
    const std::vector<double> probs{0.5, 0.01, 0.1};  // cycles 2, 100, 10
    const extended_dagger_sampler sampler{probs, 1};
    EXPECT_EQ(sampler.block_length(), 100u);
}

TEST(ExtendedDagger, AtMostOneFailurePerCycle) {
    // A component fails at most once within each of its dagger cycles.
    const std::vector<double> probs{0.2};  // cycle length 5
    extended_dagger_sampler sampler{probs, 11};
    std::vector<component_id> failed;
    for (int block = 0; block < 2000; ++block) {
        int failures_in_cycle = 0;
        for (int r = 0; r < 5; ++r) {
            sampler.next_round(failed);
            failures_in_cycle += static_cast<int>(failed.size());
        }
        ASSERT_LE(failures_in_cycle, 1);
    }
}

TEST(ExtendedDagger, UsesFarFewerRandomDrawsThanRounds) {
    // Indirect check of the efficiency claim: the expected number of failed
    // entries per round equals sum(p) regardless, but dagger generates them
    // from ~rounds*sum(p) draws. We verify the sampler still matches the
    // mean with rare probabilities where Monte-Carlo noise would be huge.
    const std::vector<double> probs(100, 0.001);
    extended_dagger_sampler sampler{probs, 21};
    std::size_t total_failures = 0;
    std::vector<component_id> failed;
    const std::size_t rounds = 100000;
    for (std::size_t r = 0; r < rounds; ++r) {
        sampler.next_round(failed);
        total_failures += failed.size();
    }
    const double expected = 100 * 0.001 * static_cast<double>(rounds);
    EXPECT_NEAR(static_cast<double>(total_failures), expected, expected * 0.1);
}

TEST(ExtendedDagger, VarianceReductionOnKOfNindicator) {
    // The indicator "no component failed this round" has lower empirical
    // variance across batches under dagger sampling than Monte-Carlo —
    // the variance-reduction effect of §3.2.2.
    const std::vector<double> probs(20, 0.05);
    const std::size_t batches = 300;
    const std::size_t rounds_per_batch = 100;

    const auto batch_variance = [&](failure_sampler& sampler) {
        std::vector<double> batch_means;
        std::vector<component_id> failed;
        for (std::size_t b = 0; b < batches; ++b) {
            std::size_t ok = 0;
            for (std::size_t r = 0; r < rounds_per_batch; ++r) {
                sampler.next_round(failed);
                ok += failed.empty() ? 1 : 0;
            }
            batch_means.push_back(static_cast<double>(ok) / rounds_per_batch);
        }
        return variance_of(batch_means);
    };

    monte_carlo_sampler mc{probs, 31};
    extended_dagger_sampler dagger{probs, 31};
    const double v_mc = batch_variance(mc);
    const double v_dagger = batch_variance(dagger);
    EXPECT_LT(v_dagger, v_mc);
}

// ---- antithetic specifics -------------------------------------------------

TEST(Antithetic, PairsAreNegativelyCorrelated) {
    // Within a mirrored pair, a component with p <= 0.5 can never fail in
    // both rounds (r < p and 1-r < p cannot hold simultaneously).
    const std::vector<double> probs{0.3, 0.5, 0.1};
    antithetic_sampler sampler{probs, 17};
    std::vector<component_id> first;
    std::vector<component_id> second;
    for (int pair = 0; pair < 5000; ++pair) {
        sampler.next_round(first);
        sampler.next_round(second);
        for (const component_id id : first) {
            ASSERT_EQ(std::count(second.begin(), second.end(), id), 0)
                << "component failed in both halves of an antithetic pair";
        }
    }
}

TEST(Antithetic, VarianceReductionOnNoFailureIndicator) {
    const std::vector<double> probs(20, 0.05);
    const std::size_t batches = 300;
    const std::size_t rounds_per_batch = 100;
    const auto batch_variance = [&](failure_sampler& sampler) {
        std::vector<double> means;
        std::vector<component_id> failed;
        for (std::size_t b = 0; b < batches; ++b) {
            std::size_t ok = 0;
            for (std::size_t r = 0; r < rounds_per_batch; ++r) {
                sampler.next_round(failed);
                ok += failed.empty() ? 1 : 0;
            }
            means.push_back(static_cast<double>(ok) / rounds_per_batch);
        }
        return variance_of(means);
    };
    monte_carlo_sampler mc{probs, 23};
    antithetic_sampler anti{probs, 23};
    EXPECT_LT(batch_variance(anti), batch_variance(mc));
}

TEST(Antithetic, ResetDiscardsPendingMirrorRound) {
    const std::vector<double> probs{0.4, 0.4, 0.4};
    antithetic_sampler sampler{probs, 31};
    std::vector<component_id> first_run;
    sampler.next_round(first_run);  // generates a pair, returns first half
    sampler.reset(31);
    std::vector<component_id> after_reset;
    sampler.next_round(after_reset);
    EXPECT_EQ(after_reset, first_run);  // stream restarted, not the mirror
}

// ---- result statistics ---------------------------------------------------

TEST(ResultAccumulator, CountsAndStats) {
    result_accumulator acc;
    for (int i = 0; i < 90; ++i) {
        acc.add(true);
    }
    for (int i = 0; i < 10; ++i) {
        acc.add(false);
    }
    EXPECT_EQ(acc.rounds(), 100u);
    EXPECT_EQ(acc.reliable_rounds(), 90u);
    const assessment_stats s = acc.stats();
    EXPECT_DOUBLE_EQ(s.reliability, 0.9);
}

TEST(ResultAccumulator, MergeFromWorkers) {
    result_accumulator acc;
    acc.merge(50, 60);
    acc.merge(30, 40);
    EXPECT_EQ(acc.rounds(), 100u);
    EXPECT_EQ(acc.reliable_rounds(), 80u);
}

TEST(RoundsForTargetCiw, MatchesInverseFormula) {
    // CIW = 4*sqrt(R(1-R)/n): for R=0.99, target 1e-3 -> n = 16*0.0099/1e-6.
    const std::size_t n = rounds_for_target_ciw(1e-3, 0.99);
    EXPECT_EQ(n, static_cast<std::size_t>(std::ceil(16.0 * 0.0099 / 1e-6)));
    const assessment_stats s =
        make_assessment_stats(static_cast<std::size_t>(0.99 * n), n);
    EXPECT_LE(s.ciw95, 1e-3 * 1.01);
}

TEST(RoundsForTargetCiw, DegenerateReliability) {
    // Anticipating certainty plans ceil(4/target) rounds — the smallest
    // sample whose CIW could still meet the target if one round disagrees —
    // instead of a useless single round.
    EXPECT_EQ(rounds_for_target_ciw(1e-4, 1.0), 40'000u);
    EXPECT_EQ(rounds_for_target_ciw(1e-4, 0.0), 40'000u);
    EXPECT_GE(rounds_for_target_ciw(0.5, 1.0), 8u);
    EXPECT_THROW((void)rounds_for_target_ciw(0.0, 0.5), std::invalid_argument);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW((void)rounds_for_target_ciw(nan, 0.5), std::invalid_argument);
}

TEST(RoundsForTargetCiw, TinyTargetClampsInsteadOfOverflowing) {
    // 16*Var[L]/target^2 overflows size_t's range as a double for tiny
    // targets; the cast used to be UB. Now it clamps to the documented cap.
    EXPECT_EQ(rounds_for_target_ciw(1e-300, 0.5), max_ciw_planning_rounds);
    EXPECT_EQ(rounds_for_target_ciw(5e-10, 0.5), max_ciw_planning_rounds);
    EXPECT_EQ(rounds_for_target_ciw(1e-300, 1.0), max_ciw_planning_rounds);
    EXPECT_EQ(rounds_for_target_ciw(std::numeric_limits<double>::min(), 0.5),
              max_ciw_planning_rounds);
    // Just under the cap still computes the formula value.
    EXPECT_LT(rounds_for_target_ciw(1e-6, 0.5), max_ciw_planning_rounds);
}

// ---- substreams (fork) --------------------------------------------------

std::vector<std::vector<component_id>> draw_rounds(failure_sampler& sampler,
                                                   std::size_t rounds) {
    std::vector<std::vector<component_id>> out;
    std::vector<component_id> failed;
    for (std::size_t i = 0; i < rounds; ++i) {
        sampler.next_round(failed);
        std::sort(failed.begin(), failed.end());
        out.push_back(failed);
    }
    return out;
}

template <typename Sampler>
class SamplerFork : public ::testing::Test {};

using fork_samplers = ::testing::Types<monte_carlo_sampler,
                                       extended_dagger_sampler,
                                       antithetic_sampler>;
TYPED_TEST_SUITE(SamplerFork, fork_samplers);

TYPED_TEST(SamplerFork, SameStreamIdYieldsIdenticalStream) {
    const std::vector<double> probs(40, 0.05);
    TypeParam sampler{probs, 7};
    const auto a = draw_rounds(*sampler.fork(3), 200);
    const auto b = draw_rounds(*sampler.fork(3), 200);
    EXPECT_EQ(a, b);
}

TYPED_TEST(SamplerFork, StreamIsIndependentOfParentConsumption) {
    // The substream must depend only on (base seed, stream id) — never on
    // how far the parent stream has advanced. This is what makes parallel
    // batch assignment deterministic for any worker count.
    const std::vector<double> probs(40, 0.05);
    TypeParam fresh{probs, 7};
    const auto before = draw_rounds(*fresh.fork(9), 100);

    TypeParam consumed{probs, 7};
    std::vector<component_id> scratch;
    for (int i = 0; i < 500; ++i) {
        consumed.next_round(scratch);
    }
    EXPECT_EQ(draw_rounds(*consumed.fork(9), 100), before);
}

TYPED_TEST(SamplerFork, DistinctStreamIdsDecorrelate) {
    const std::vector<double> probs(60, 0.1);
    TypeParam sampler{probs, 7};
    EXPECT_NE(draw_rounds(*sampler.fork(0), 200),
              draw_rounds(*sampler.fork(1), 200));
}

TYPED_TEST(SamplerFork, ResetRebasesTheSubstreams) {
    const std::vector<double> probs(40, 0.05);
    TypeParam sampler{probs, 7};
    const auto original = draw_rounds(*sampler.fork(2), 100);
    sampler.reset(8);
    EXPECT_NE(draw_rounds(*sampler.fork(2), 100), original);
    sampler.reset(7);
    EXPECT_EQ(draw_rounds(*sampler.fork(2), 100), original);
}

TYPED_TEST(SamplerFork, ForkedStreamKeepsMarginalProbability) {
    // Substreams must sample the same distribution: with p = 0.1 over 50
    // components and 4000 rounds, the observed failure ratio concentrates
    // tightly around 0.1.
    const std::vector<double> probs(50, 0.1);
    TypeParam sampler{probs, 11};
    const auto rounds = draw_rounds(*sampler.fork(5), 4000);
    std::size_t failures = 0;
    for (const auto& round : rounds) {
        failures += round.size();
    }
    const double ratio =
        static_cast<double>(failures) / (4000.0 * probs.size());
    EXPECT_NEAR(ratio, 0.1, 0.01);
}

TEST(SamplerFork, ScriptedSamplerHasNoSubstreams) {
    scripted_sampler scripted{{{1, 2}, {3}}};
    EXPECT_EQ(scripted.fork(0), nullptr);
}

}  // namespace
}  // namespace recloud
