#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace recloud {
namespace {

network_graph make_triangle() {
    network_graph g;
    const node_id a = g.add_node(node_kind::host);
    const node_id b = g.add_node(node_kind::edge_switch);
    const node_id c = g.add_node(node_kind::core_switch);
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, a);
    g.freeze();
    return g;
}

TEST(Graph, NodeIdsAreDense) {
    network_graph g;
    EXPECT_EQ(g.add_node(node_kind::host), 0u);
    EXPECT_EQ(g.add_node(node_kind::host), 1u);
    EXPECT_EQ(g.add_node(node_kind::external), 2u);
    EXPECT_EQ(g.node_count(), 3u);
}

TEST(Graph, KindsAreStored) {
    const network_graph g = make_triangle();
    EXPECT_EQ(g.kind(0), node_kind::host);
    EXPECT_EQ(g.kind(1), node_kind::edge_switch);
    EXPECT_EQ(g.kind(2), node_kind::core_switch);
}

TEST(Graph, NeighborsAreSymmetric) {
    const network_graph g = make_triangle();
    for (node_id a = 0; a < g.node_count(); ++a) {
        for (const node_id b : g.neighbors(a)) {
            const auto nb = g.neighbors(b);
            EXPECT_NE(std::find(nb.begin(), nb.end(), a), nb.end());
        }
    }
}

TEST(Graph, DegreeAndEdgeCount) {
    const network_graph g = make_triangle();
    EXPECT_EQ(g.edge_count(), 3u);
    for (node_id id = 0; id < g.node_count(); ++id) {
        EXPECT_EQ(g.degree(id), 2u);
    }
}

TEST(Graph, HasEdge) {
    const network_graph g = make_triangle();
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));

    network_graph g2;
    (void)g2.add_node(node_kind::host);
    (void)g2.add_node(node_kind::host);
    g2.freeze();
    EXPECT_FALSE(g2.has_edge(0, 1));
}

TEST(Graph, NodesOfKindAndCount) {
    network_graph g;
    (void)g.add_node(node_kind::host);
    (void)g.add_node(node_kind::edge_switch);
    (void)g.add_node(node_kind::host);
    g.freeze();
    const auto hosts = g.nodes_of_kind(node_kind::host);
    EXPECT_EQ(hosts, (std::vector<node_id>{0, 2}));
    EXPECT_EQ(g.count_of_kind(node_kind::host), 2u);
    EXPECT_EQ(g.count_of_kind(node_kind::core_switch), 0u);
}

TEST(Graph, IsSwitchHelper) {
    EXPECT_TRUE(is_switch(node_kind::edge_switch));
    EXPECT_TRUE(is_switch(node_kind::aggregation_switch));
    EXPECT_TRUE(is_switch(node_kind::core_switch));
    EXPECT_TRUE(is_switch(node_kind::border_switch));
    EXPECT_FALSE(is_switch(node_kind::host));
    EXPECT_FALSE(is_switch(node_kind::external));
}

TEST(Graph, SelfLoopRejected) {
    network_graph g;
    const node_id a = g.add_node(node_kind::host);
    EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
}

TEST(Graph, EdgeToMissingNodeRejected) {
    network_graph g;
    const node_id a = g.add_node(node_kind::host);
    EXPECT_THROW(g.add_edge(a, 5), std::out_of_range);
}

TEST(Graph, MutationAfterFreezeRejected) {
    network_graph g = make_triangle();
    EXPECT_THROW((void)g.add_node(node_kind::host), std::logic_error);
    EXPECT_THROW(g.add_edge(0, 1), std::logic_error);
    EXPECT_THROW(g.freeze(), std::logic_error);
}

TEST(Graph, NeighborsBeforeFreezeRejected) {
    network_graph g;
    (void)g.add_node(node_kind::host);
    EXPECT_THROW((void)g.neighbors(0), std::logic_error);
}

TEST(Graph, RackOfReturnsSwitchNeighbor) {
    network_graph g;
    const node_id host = g.add_node(node_kind::host);
    const node_id tor = g.add_node(node_kind::edge_switch);
    const node_id other_host = g.add_node(node_kind::host);
    g.add_edge(host, tor);
    g.add_edge(host, other_host);  // host-to-host link must be ignored
    g.freeze();
    EXPECT_EQ(rack_of(g, host), tor);
}

TEST(Graph, RackOfWithoutSwitchThrows) {
    network_graph g;
    const node_id a = g.add_node(node_kind::host);
    const node_id b = g.add_node(node_kind::host);
    g.add_edge(a, b);
    g.freeze();
    EXPECT_THROW((void)rack_of(g, a), std::invalid_argument);
}

TEST(Graph, ToStringCoversAllKinds) {
    EXPECT_STREQ(to_string(node_kind::host), "host");
    EXPECT_STREQ(to_string(node_kind::edge_switch), "edge_switch");
    EXPECT_STREQ(to_string(node_kind::aggregation_switch), "aggregation_switch");
    EXPECT_STREQ(to_string(node_kind::core_switch), "core_switch");
    EXPECT_STREQ(to_string(node_kind::border_switch), "border_switch");
    EXPECT_STREQ(to_string(node_kind::external), "external");
}

}  // namespace
}  // namespace recloud
