#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace recloud {
namespace {

TEST(Serialize, ScalarRoundtrip) {
    byte_writer w;
    w.write_u8(0xab);
    w.write_u32(0xdeadbeef);
    w.write_u64(0x0123456789abcdefULL);
    w.write_f64(3.14159);
    w.write_bool(true);
    w.write_bool(false);

    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_u8(), 0xab);
    EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
    EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
    EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
    EXPECT_TRUE(r.read_bool());
    EXPECT_FALSE(r.read_bool());
    EXPECT_TRUE(r.at_end());
}

TEST(Serialize, VarintRoundtripEdgeValues) {
    const std::vector<std::uint64_t> values{
        0, 1, 127, 128, 255, 16383, 16384, 1'000'000,
        std::numeric_limits<std::uint32_t>::max(),
        std::numeric_limits<std::uint64_t>::max()};
    byte_writer w;
    for (const auto v : values) {
        w.write_varint(v);
    }
    byte_reader r{w.bytes()};
    for (const auto v : values) {
        EXPECT_EQ(r.read_varint(), v);
    }
    EXPECT_TRUE(r.at_end());
}

TEST(Serialize, VarintIsCompactForSmallValues) {
    byte_writer w;
    w.write_varint(100);
    EXPECT_EQ(w.size(), 1u);
    w.write_varint(300);
    EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Serialize, StringRoundtrip) {
    byte_writer w;
    w.write_string("hello");
    w.write_string("");
    w.write_string(std::string(1000, 'x'));
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_string(), "hello");
    EXPECT_EQ(r.read_string(), "");
    EXPECT_EQ(r.read_string(), std::string(1000, 'x'));
}

TEST(Serialize, UintVectorRoundtrip) {
    const std::vector<std::uint32_t> ids{0, 5, 1000, 4'000'000'000u};
    byte_writer w;
    w.write_uint_vector(std::span<const std::uint32_t>{ids});
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_uint_vector<std::uint32_t>(), ids);
}

TEST(Serialize, EmptyUintVector) {
    byte_writer w;
    w.write_uint_vector(std::span<const std::uint32_t>{});
    byte_reader r{w.bytes()};
    EXPECT_TRUE(r.read_uint_vector<std::uint32_t>().empty());
    EXPECT_TRUE(r.at_end());
}

TEST(Serialize, F64VectorRoundtrip) {
    const std::vector<double> xs{0.0, -1.5, 3.25, 1e300};
    byte_writer w;
    w.write_f64_vector(xs);
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_f64_vector(), xs);
}

TEST(Serialize, UnderrunThrows) {
    byte_writer w;
    w.write_u8(1);
    byte_reader r{w.bytes()};
    (void)r.read_u8();
    EXPECT_THROW((void)r.read_u8(), serialize_error);
    EXPECT_THROW((void)r.read_u64(), serialize_error);
    EXPECT_THROW((void)r.read_f64(), serialize_error);
}

TEST(Serialize, MalformedBoolThrows) {
    byte_writer w;
    w.write_u8(2);
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_bool(), serialize_error);
}

TEST(Serialize, TruncatedVarintThrows) {
    byte_writer w;
    w.write_u8(0x80);  // continuation bit set, then nothing
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_varint(), serialize_error);
}

TEST(Serialize, OverlongVarintThrows) {
    byte_writer w;
    for (int i = 0; i < 11; ++i) {
        w.write_u8(0xff);  // 11 continuation bytes > max 10 for 64 bits
    }
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_varint(), serialize_error);
}

TEST(Serialize, ImplausibleCountRejectedWithoutAllocation) {
    // A corrupt length prefix claiming ~2^60 elements must throw, not
    // attempt the allocation.
    byte_writer w;
    w.write_varint(std::uint64_t{1} << 60);
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_uint_vector<std::uint32_t>(), serialize_error);
}

TEST(Serialize, ElementOutOfRangeThrows) {
    byte_writer w;
    w.write_varint(1);                       // one element
    w.write_varint(std::uint64_t{1} << 40);  // too big for uint32
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_uint_vector<std::uint32_t>(), serialize_error);
}

TEST(Serialize, TakeMovesBuffer) {
    byte_writer w;
    w.write_u32(7);
    const auto bytes = w.take();
    EXPECT_EQ(bytes.size(), 4u);
    EXPECT_EQ(w.size(), 0u);
}

TEST(Serialize, VarintWithBitsPast64Throws) {
    // 10 bytes whose 10th carries more than bit 63: value would need 65+
    // bits. Every such encoding must be rejected, not silently truncated.
    for (const std::uint8_t tenth : {0x02, 0x04, 0x40, 0x7f}) {
        byte_writer w;
        for (int i = 0; i < 9; ++i) {
            w.write_u8(0x80);  // nine continuation bytes, payload bits 0
        }
        w.write_u8(tenth);
        byte_reader r{w.bytes()};
        EXPECT_THROW((void)r.read_varint(), serialize_error) << int{tenth};
    }
    // ...while bit 63 alone (tenth byte == 0x01) is the legal maximum.
    byte_writer w;
    for (int i = 0; i < 9; ++i) {
        w.write_u8(0x80);
    }
    w.write_u8(0x01);
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_varint(), std::uint64_t{1} << 63);
}

TEST(Serialize, StringLengthValidatedBeforeAllocation) {
    byte_writer w;
    w.write_varint(std::uint64_t{1} << 61);  // hostile length prefix
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_string(), serialize_error);
}

TEST(Serialize, F64VectorCountValidatedAgainstElementSize) {
    // 16 bytes remain after the prefix; a count of 3 fits "count <=
    // remaining" but not 3 doubles — it must be rejected up front.
    byte_writer w;
    w.write_varint(3);
    w.write_f64(1.0);
    w.write_f64(2.0);
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_f64_vector(), serialize_error);
}

// ---- message framing ----------------------------------------------------

TEST(Frame, Roundtrip) {
    byte_writer w;
    w.write_u64(0xfeedface);
    w.write_string("payload");
    const std::vector<std::byte> payload = w.take();
    const std::vector<std::byte> framed = frame_message(payload);
    ASSERT_EQ(framed.size(), frame_header_bytes + payload.size());
    const std::span<const std::byte> out = unframe_message(framed);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), payload.begin(), payload.end()));
}

TEST(Frame, EmptyPayloadRoundtrip) {
    const std::vector<std::byte> framed = frame_message({});
    EXPECT_TRUE(unframe_message(framed).empty());
}

TEST(Frame, TruncatedAtEveryLengthThrows) {
    byte_writer w;
    w.write_string("four score and seven rounds ago");
    const std::vector<std::byte> framed = frame_message(w.bytes());
    for (std::size_t keep = 0; keep < framed.size(); ++keep) {
        const std::span<const std::byte> cut{framed.data(), keep};
        EXPECT_THROW((void)unframe_message(cut), serialize_error) << keep;
    }
}

TEST(Frame, EverySingleBitFlipDetected) {
    // Every header field is load-bearing (magic, version, length, checksum)
    // and the checksum covers the payload — so EVERY single-bit corruption
    // of a framed message must surface as serialize_error, never as a
    // successfully decoded wrong message.
    byte_writer w;
    w.write_u32(123456);
    w.write_string("bits");
    const std::vector<std::byte> framed = frame_message(w.bytes());
    for (std::size_t i = 0; i < framed.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::byte> corrupt = framed;
            corrupt[i] ^= static_cast<std::byte>(1u << bit);
            EXPECT_THROW((void)unframe_message(corrupt), serialize_error)
                << "byte " << i << " bit " << bit;
        }
    }
}

TEST(Frame, TrailingGarbageRejected) {
    byte_writer w;
    w.write_u8(9);
    std::vector<std::byte> framed = frame_message(w.bytes());
    framed.push_back(std::byte{0});
    EXPECT_THROW((void)unframe_message(framed), serialize_error);
}

// ---- on-wire byte layout ---------------------------------------------------
// Frames cross a PROCESS boundary now (the socket transport), so the
// encoding must be a pinned little-endian contract, not host memory order.
// These tests assert the exact bytes, byte by byte.

TEST(Serialize, ScalarsAreLittleEndianOnTheWire) {
    byte_writer w;
    w.write_u32(0x01020304u);
    w.write_u64(0x1112131415161718ULL);
    const std::vector<std::byte>& bytes = w.bytes();
    ASSERT_EQ(bytes.size(), 12u);
    const std::uint8_t want[12] = {0x04, 0x03, 0x02, 0x01,  // u32, LSB first
                                   0x18, 0x17, 0x16, 0x15,  // u64, LSB first
                                   0x14, 0x13, 0x12, 0x11};
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(std::to_integer<std::uint8_t>(bytes[i]), want[i]) << "byte " << i;
    }
}

TEST(Serialize, F64IsLittleEndianIeeeBits) {
    byte_writer w;
    w.write_f64(1.0);  // IEEE-754: 0x3FF0000000000000
    const std::vector<std::byte>& bytes = w.bytes();
    ASSERT_EQ(bytes.size(), 8u);
    const std::uint8_t want[8] = {0, 0, 0, 0, 0, 0, 0xf0, 0x3f};
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(std::to_integer<std::uint8_t>(bytes[i]), want[i]) << "byte " << i;
    }
}

TEST(Frame, HeaderLayoutIsPinned) {
    byte_writer w;
    w.write_u8(0x7e);
    const std::vector<std::byte> framed = frame_message(w.bytes());
    ASSERT_EQ(framed.size(), frame_header_bytes + 1);
    // magic "RCW\x01" little-endian, version, then payload length u64 LE.
    EXPECT_EQ(std::to_integer<std::uint8_t>(framed[0]), 0x52);  // 'R'
    EXPECT_EQ(std::to_integer<std::uint8_t>(framed[1]), 0x43);  // 'C'
    EXPECT_EQ(std::to_integer<std::uint8_t>(framed[2]), 0x57);  // 'W'
    EXPECT_EQ(std::to_integer<std::uint8_t>(framed[3]), 0x01);
    EXPECT_EQ(std::to_integer<std::uint8_t>(framed[4]), frame_version);
    EXPECT_EQ(std::to_integer<std::uint8_t>(framed[5]), 1);  // length LSB
    for (std::size_t i = 6; i < 13; ++i) {
        EXPECT_EQ(std::to_integer<std::uint8_t>(framed[i]), 0) << "byte " << i;
    }
}

// ---- frame_assembler: stream reassembly ------------------------------------
// A socket delivers frames in arbitrary segments; every split must
// reassemble to identical frames.

std::vector<std::byte> make_framed(std::uint8_t tag, std::size_t payload) {
    byte_writer w;
    for (std::size_t i = 0; i < payload; ++i) {
        w.write_u8(static_cast<std::uint8_t>(tag + i));
    }
    return frame_message(w.bytes());
}

TEST(FrameAssembler, WholeFrameInOneFeed) {
    const std::vector<std::byte> framed = make_framed(1, 5);
    frame_assembler a;
    a.feed(framed);
    const auto got = a.next_frame();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, framed);
    EXPECT_FALSE(a.next_frame().has_value());
    EXPECT_EQ(a.buffered(), 0u);
}

TEST(FrameAssembler, EverySplitPointReassembles) {
    const std::vector<std::byte> framed = make_framed(3, 9);
    for (std::size_t split = 0; split <= framed.size(); ++split) {
        frame_assembler a;
        a.feed(std::span<const std::byte>{framed.data(), split});
        if (split < framed.size()) {
            EXPECT_FALSE(a.next_frame().has_value()) << "split " << split;
        }
        a.feed(std::span<const std::byte>{framed.data() + split,
                                          framed.size() - split});
        const auto got = a.next_frame();
        ASSERT_TRUE(got.has_value()) << "split " << split;
        EXPECT_EQ(*got, framed) << "split " << split;
        // The reassembled frame validates end-to-end.
        EXPECT_NO_THROW((void)unframe_message(*got));
    }
}

TEST(FrameAssembler, ByteAtATimeDripReassemblesManyFrames) {
    std::vector<std::vector<std::byte>> frames;
    std::vector<std::byte> stream;
    for (std::uint8_t t = 0; t < 7; ++t) {
        frames.push_back(make_framed(t, 1 + t * 3));
        stream.insert(stream.end(), frames.back().begin(), frames.back().end());
    }
    frame_assembler a;
    std::size_t next = 0;
    for (const std::byte b : stream) {
        a.feed(std::span<const std::byte>{&b, 1});
        while (const auto got = a.next_frame()) {
            ASSERT_LT(next, frames.size());
            EXPECT_EQ(*got, frames[next]);
            ++next;
        }
    }
    EXPECT_EQ(next, frames.size());
    EXPECT_EQ(a.buffered(), 0u);
}

TEST(FrameAssembler, RandomMultiFrameSegmentationReassembles) {
    // Deterministic pseudo-random segment lengths over a multi-frame stream.
    std::vector<std::vector<std::byte>> frames;
    std::vector<std::byte> stream;
    for (std::uint8_t t = 0; t < 16; ++t) {
        frames.push_back(make_framed(t, (t * 37) % 101));
        stream.insert(stream.end(), frames.back().begin(), frames.back().end());
    }
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    frame_assembler a;
    std::size_t pos = 0;
    std::size_t next = 0;
    while (pos < stream.size()) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::size_t len =
            std::min<std::size_t>(1 + (state >> 33) % 61, stream.size() - pos);
        a.feed(std::span<const std::byte>{stream.data() + pos, len});
        pos += len;
        while (const auto got = a.next_frame()) {
            ASSERT_LT(next, frames.size());
            EXPECT_EQ(*got, frames[next]);
            ++next;
        }
    }
    EXPECT_EQ(next, frames.size());
}

TEST(FrameAssembler, DesyncedStreamThrowsOnceHeaderIsComplete) {
    frame_assembler a;
    const std::vector<std::byte> garbage(frame_header_bytes, std::byte{0x5a});
    a.feed(garbage);
    EXPECT_THROW((void)a.next_frame(), serialize_error);
}

TEST(FrameAssembler, WrongVersionThrows) {
    std::vector<std::byte> framed = make_framed(0, 4);
    framed[4] = std::byte{frame_version + 1};
    frame_assembler a;
    a.feed(framed);
    EXPECT_THROW((void)a.next_frame(), serialize_error);
}

TEST(FrameAssembler, OversizedPayloadClaimThrowsWithoutWaitingForPayload) {
    byte_writer w;
    for (int i = 0; i < 64; ++i) {
        w.write_u8(1);
    }
    const std::vector<std::byte> framed = frame_message(w.bytes());
    frame_assembler a{32};  // limit below the claimed payload
    // Feed the header alone: the bogus length must poison the stream right
    // away, not stall the reader waiting for a phantom giant payload.
    a.feed(std::span<const std::byte>{framed.data(), frame_header_bytes});
    EXPECT_THROW((void)a.next_frame(), serialize_error);
}

TEST(FrameAssembler, ChecksumStaysEndToEnd) {
    // The assembler hands back corrupted-payload frames untouched; the
    // CHECKSUM is unframe_message's job (end-to-end integrity), and a
    // payload flip must not desynchronize the following frame.
    std::vector<std::byte> first = make_framed(1, 8);
    first[frame_header_bytes] ^= std::byte{0x10};  // flip a payload bit
    const std::vector<std::byte> second = make_framed(2, 8);
    frame_assembler a;
    a.feed(first);
    a.feed(second);
    const auto got1 = a.next_frame();
    ASSERT_TRUE(got1.has_value());
    EXPECT_THROW((void)unframe_message(*got1), serialize_error);
    const auto got2 = a.next_frame();
    ASSERT_TRUE(got2.has_value());
    EXPECT_EQ(*got2, second);
    EXPECT_NO_THROW((void)unframe_message(*got2));
}

}  // namespace
}  // namespace recloud
