#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace recloud {
namespace {

TEST(Serialize, ScalarRoundtrip) {
    byte_writer w;
    w.write_u8(0xab);
    w.write_u32(0xdeadbeef);
    w.write_u64(0x0123456789abcdefULL);
    w.write_f64(3.14159);
    w.write_bool(true);
    w.write_bool(false);

    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_u8(), 0xab);
    EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
    EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
    EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
    EXPECT_TRUE(r.read_bool());
    EXPECT_FALSE(r.read_bool());
    EXPECT_TRUE(r.at_end());
}

TEST(Serialize, VarintRoundtripEdgeValues) {
    const std::vector<std::uint64_t> values{
        0, 1, 127, 128, 255, 16383, 16384, 1'000'000,
        std::numeric_limits<std::uint32_t>::max(),
        std::numeric_limits<std::uint64_t>::max()};
    byte_writer w;
    for (const auto v : values) {
        w.write_varint(v);
    }
    byte_reader r{w.bytes()};
    for (const auto v : values) {
        EXPECT_EQ(r.read_varint(), v);
    }
    EXPECT_TRUE(r.at_end());
}

TEST(Serialize, VarintIsCompactForSmallValues) {
    byte_writer w;
    w.write_varint(100);
    EXPECT_EQ(w.size(), 1u);
    w.write_varint(300);
    EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Serialize, StringRoundtrip) {
    byte_writer w;
    w.write_string("hello");
    w.write_string("");
    w.write_string(std::string(1000, 'x'));
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_string(), "hello");
    EXPECT_EQ(r.read_string(), "");
    EXPECT_EQ(r.read_string(), std::string(1000, 'x'));
}

TEST(Serialize, UintVectorRoundtrip) {
    const std::vector<std::uint32_t> ids{0, 5, 1000, 4'000'000'000u};
    byte_writer w;
    w.write_uint_vector(std::span<const std::uint32_t>{ids});
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_uint_vector<std::uint32_t>(), ids);
}

TEST(Serialize, EmptyUintVector) {
    byte_writer w;
    w.write_uint_vector(std::span<const std::uint32_t>{});
    byte_reader r{w.bytes()};
    EXPECT_TRUE(r.read_uint_vector<std::uint32_t>().empty());
    EXPECT_TRUE(r.at_end());
}

TEST(Serialize, F64VectorRoundtrip) {
    const std::vector<double> xs{0.0, -1.5, 3.25, 1e300};
    byte_writer w;
    w.write_f64_vector(xs);
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_f64_vector(), xs);
}

TEST(Serialize, UnderrunThrows) {
    byte_writer w;
    w.write_u8(1);
    byte_reader r{w.bytes()};
    (void)r.read_u8();
    EXPECT_THROW((void)r.read_u8(), serialize_error);
    EXPECT_THROW((void)r.read_u64(), serialize_error);
    EXPECT_THROW((void)r.read_f64(), serialize_error);
}

TEST(Serialize, MalformedBoolThrows) {
    byte_writer w;
    w.write_u8(2);
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_bool(), serialize_error);
}

TEST(Serialize, TruncatedVarintThrows) {
    byte_writer w;
    w.write_u8(0x80);  // continuation bit set, then nothing
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_varint(), serialize_error);
}

TEST(Serialize, OverlongVarintThrows) {
    byte_writer w;
    for (int i = 0; i < 11; ++i) {
        w.write_u8(0xff);  // 11 continuation bytes > max 10 for 64 bits
    }
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_varint(), serialize_error);
}

TEST(Serialize, ImplausibleCountRejectedWithoutAllocation) {
    // A corrupt length prefix claiming ~2^60 elements must throw, not
    // attempt the allocation.
    byte_writer w;
    w.write_varint(std::uint64_t{1} << 60);
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_uint_vector<std::uint32_t>(), serialize_error);
}

TEST(Serialize, ElementOutOfRangeThrows) {
    byte_writer w;
    w.write_varint(1);                       // one element
    w.write_varint(std::uint64_t{1} << 40);  // too big for uint32
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_uint_vector<std::uint32_t>(), serialize_error);
}

TEST(Serialize, TakeMovesBuffer) {
    byte_writer w;
    w.write_u32(7);
    const auto bytes = w.take();
    EXPECT_EQ(bytes.size(), 4u);
    EXPECT_EQ(w.size(), 0u);
}

TEST(Serialize, VarintWithBitsPast64Throws) {
    // 10 bytes whose 10th carries more than bit 63: value would need 65+
    // bits. Every such encoding must be rejected, not silently truncated.
    for (const std::uint8_t tenth : {0x02, 0x04, 0x40, 0x7f}) {
        byte_writer w;
        for (int i = 0; i < 9; ++i) {
            w.write_u8(0x80);  // nine continuation bytes, payload bits 0
        }
        w.write_u8(tenth);
        byte_reader r{w.bytes()};
        EXPECT_THROW((void)r.read_varint(), serialize_error) << int{tenth};
    }
    // ...while bit 63 alone (tenth byte == 0x01) is the legal maximum.
    byte_writer w;
    for (int i = 0; i < 9; ++i) {
        w.write_u8(0x80);
    }
    w.write_u8(0x01);
    byte_reader r{w.bytes()};
    EXPECT_EQ(r.read_varint(), std::uint64_t{1} << 63);
}

TEST(Serialize, StringLengthValidatedBeforeAllocation) {
    byte_writer w;
    w.write_varint(std::uint64_t{1} << 61);  // hostile length prefix
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_string(), serialize_error);
}

TEST(Serialize, F64VectorCountValidatedAgainstElementSize) {
    // 16 bytes remain after the prefix; a count of 3 fits "count <=
    // remaining" but not 3 doubles — it must be rejected up front.
    byte_writer w;
    w.write_varint(3);
    w.write_f64(1.0);
    w.write_f64(2.0);
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)r.read_f64_vector(), serialize_error);
}

// ---- message framing ----------------------------------------------------

TEST(Frame, Roundtrip) {
    byte_writer w;
    w.write_u64(0xfeedface);
    w.write_string("payload");
    const std::vector<std::byte> payload = w.take();
    const std::vector<std::byte> framed = frame_message(payload);
    ASSERT_EQ(framed.size(), frame_header_bytes + payload.size());
    const std::span<const std::byte> out = unframe_message(framed);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), payload.begin(), payload.end()));
}

TEST(Frame, EmptyPayloadRoundtrip) {
    const std::vector<std::byte> framed = frame_message({});
    EXPECT_TRUE(unframe_message(framed).empty());
}

TEST(Frame, TruncatedAtEveryLengthThrows) {
    byte_writer w;
    w.write_string("four score and seven rounds ago");
    const std::vector<std::byte> framed = frame_message(w.bytes());
    for (std::size_t keep = 0; keep < framed.size(); ++keep) {
        const std::span<const std::byte> cut{framed.data(), keep};
        EXPECT_THROW((void)unframe_message(cut), serialize_error) << keep;
    }
}

TEST(Frame, EverySingleBitFlipDetected) {
    // Every header field is load-bearing (magic, version, length, checksum)
    // and the checksum covers the payload — so EVERY single-bit corruption
    // of a framed message must surface as serialize_error, never as a
    // successfully decoded wrong message.
    byte_writer w;
    w.write_u32(123456);
    w.write_string("bits");
    const std::vector<std::byte> framed = frame_message(w.bytes());
    for (std::size_t i = 0; i < framed.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::byte> corrupt = framed;
            corrupt[i] ^= static_cast<std::byte>(1u << bit);
            EXPECT_THROW((void)unframe_message(corrupt), serialize_error)
                << "byte " << i << " bit " << bit;
        }
    }
}

TEST(Frame, TrailingGarbageRejected) {
    byte_writer w;
    w.write_u8(9);
    std::vector<std::byte> framed = frame_message(w.bytes());
    framed.push_back(std::byte{0});
    EXPECT_THROW((void)unframe_message(framed), serialize_error);
}

}  // namespace
}  // namespace recloud
