#include "topology/bcube.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "assess/assessor.hpp"
#include "faults/round_state.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/stats.hpp"

namespace recloud {
namespace {

TEST(BCube, CountsMatchDefinition) {
    // BCube(4, 1): 16 servers, 2 levels x 4 switches.
    const built_topology topo = build_bcube({.ports = 4, .levels = 1});
    const topology_stats s = compute_topology_stats(topo);
    EXPECT_EQ(s.hosts, 16u);
    EXPECT_EQ(s.edge_switches + s.border_switches, 8u);
    EXPECT_EQ(s.border_switches, 2u);

    // BCube(3, 2): 27 servers, 3 levels x 9 switches.
    const built_topology deep = build_bcube({.ports = 3, .levels = 2});
    EXPECT_EQ(deep.hosts.size(), 27u);
    EXPECT_EQ(deep.graph.count_of_kind(node_kind::edge_switch) +
                  deep.graph.count_of_kind(node_kind::border_switch),
              27u);
}

TEST(BCube, ServerDegreeIsLevelsPlusOne) {
    const built_topology topo = build_bcube({.ports = 4, .levels = 2});
    for (const node_id server : topo.hosts) {
        EXPECT_EQ(topo.graph.degree(server), 3u);  // k+1 ports
    }
}

TEST(BCube, SwitchDegreeIsPortCount) {
    const built_topology topo = build_bcube({.ports = 5, .levels = 1,
                                             .border_switches = 1});
    for (node_id id = 0; id < topo.graph.node_count(); ++id) {
        if (topo.graph.kind(id) == node_kind::edge_switch) {
            EXPECT_EQ(topo.graph.degree(id), 5u);
        } else if (topo.graph.kind(id) == node_kind::border_switch) {
            EXPECT_EQ(topo.graph.degree(id), 6u);  // + external peering
        }
    }
}

TEST(BCube, TwoServersNeverShareTwoSwitches) {
    // BCube property: any two servers share at most one switch.
    const built_topology topo = build_bcube({.ports = 4, .levels = 1});
    for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
        for (std::size_t j = i + 1; j < topo.hosts.size(); ++j) {
            int shared = 0;
            for (const node_id sw : topo.graph.neighbors(topo.hosts[i])) {
                if (topo.graph.has_edge(sw, topo.hosts[j])) {
                    ++shared;
                }
            }
            EXPECT_LE(shared, 1);
        }
    }
}

TEST(BCube, HealthyConnectivity) {
    const built_topology topo = build_bcube({.ports = 4, .levels = 1});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    rs.begin_round(std::vector<component_id>{});
    oracle.begin_round(rs);
    for (const node_id server : topo.hosts) {
        EXPECT_TRUE(oracle.border_reachable(server));
    }
}

TEST(BCube, ServerCentricRelaySurvivesSwitchLoss) {
    // Kill BOTH switches of server 0 (its level-0 and level-1 switch; the
    // latter is border switch #0, so keep a second border switch alive).
    // In a switch-centric topology the whole rack would be isolated; in
    // BCube the rest of server 0's level-0 group stays border-reachable by
    // relaying through its other ports.
    const built_topology topo = build_bcube({.ports = 4, .levels = 1,
                                             .border_switches = 2});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};

    const node_id server0 = topo.hosts[0];
    std::vector<component_id> switches_of_0;
    for (const node_id sw : topo.graph.neighbors(server0)) {
        switches_of_0.push_back(sw);
    }
    ASSERT_EQ(switches_of_0.size(), 2u);

    rs.begin_round(switches_of_0);
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(server0));
    // Every other server is still border-reachable (possibly via relays).
    for (const node_id server : topo.hosts) {
        if (server != server0) {
            EXPECT_TRUE(oracle.border_reachable(server)) << server;
        }
    }
}

TEST(BCube, RelayThroughServersWhenTopLevelMostlyDead) {
    // Keep only the border top-level switch alive at level 1: servers not
    // directly attached to it must relay through level-0 switches and
    // intermediate servers to reach the border.
    const built_topology topo = build_bcube({.ports = 4, .levels = 1,
                                             .border_switches = 1});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};

    // Level-1 switches are the second half of the switch list; the border
    // switch carries the border kind.
    std::vector<component_id> failed;
    for (node_id id = 0; id < topo.graph.node_count(); ++id) {
        if (topo.graph.kind(id) == node_kind::edge_switch) {
            // Identify level-1 switches: they connect servers that differ
            // in the HIGH digit (stride n). Level-0 switches connect
            // consecutive server ids.
            const auto neighbors = topo.graph.neighbors(id);
            if (neighbors.size() >= 2 &&
                neighbors[1] >= neighbors[0] + 4) {  // stride-n pattern
                failed.push_back(id);
            }
        }
    }
    ASSERT_EQ(failed.size(), 3u);  // 4 level-1 switches minus the border one
    rs.begin_round(failed);
    oracle.begin_round(rs);
    for (const node_id server : topo.hosts) {
        EXPECT_TRUE(oracle.border_reachable(server)) << server;
    }
}

TEST(BCube, AssessmentRunsEndToEnd) {
    const built_topology topo = build_bcube({.ports = 4, .levels = 1});
    component_registry registry{topo.graph};
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) != component_kind::external) {
            registry.set_probability(id, 0.02);
        }
    }
    bfs_reachability oracle{topo};
    extended_dagger_sampler sampler{registry.probabilities(), 5};
    round_state rs{registry.size(), nullptr};
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[15]};
    const assessment_stats stats =
        assess_deployment(sampler, rs, oracle, app, plan, 5000);
    EXPECT_GT(stats.reliability, 0.9);
    EXPECT_LT(stats.reliability, 1.0);
}

TEST(BCube, InvalidParamsRejected) {
    EXPECT_THROW((void)build_bcube({.ports = 1}), std::invalid_argument);
    EXPECT_THROW((void)build_bcube({.levels = -1}), std::invalid_argument);
    EXPECT_THROW((void)build_bcube({.ports = 4, .levels = 1,
                                    .border_switches = 5}),
                 std::invalid_argument);
    EXPECT_THROW((void)build_bcube({.ports = 4, .levels = 1,
                                    .border_switches = 0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace recloud
