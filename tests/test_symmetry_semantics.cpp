// Semantic soundness of the network-transformation equivalence: if two
// plans have equal signatures on a uniform fabric, their EXACT reliabilities
// must be equal. Runs on a tiny leaf-spine where exhaustive enumeration is
// feasible, sweeping many random plan pairs.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "assess/exact.hpp"
#include "routing/bfs_reachability.hpp"
#include "search/neighbor.hpp"
#include "search/symmetry.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/power.hpp"
#include "util/rng.hpp"

namespace recloud {
namespace {

struct semantic_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    power_assignment power = attach_power_supplies(topo, registry, forest,
                                                   {.supply_count = 3});

    semantic_fixture() {
        // Uniform per-type probabilities: hosts 2%, switches 1%, supplies 3%.
        for (component_id id = 0; id < registry.size(); ++id) {
            switch (registry.kind(id)) {
                case component_kind::host:
                    registry.set_probability(id, 0.02);
                    break;
                case component_kind::power_supply:
                    registry.set_probability(id, 0.03);
                    break;
                case component_kind::external:
                    break;
                default:
                    registry.set_probability(id, 0.01);
            }
        }
    }
};

TEST(SymmetrySemantics, EqualSignatureImpliesEqualExactReliability) {
    semantic_fixture f;
    const symmetry_checker checker{f.topo, f.registry, &f.forest};
    bfs_reachability oracle{f.topo};
    const application app = application::k_of_n(1, 2);
    neighbor_generator gen{f.topo, anti_affinity::none, 31};

    // Group 200 random plans by signature; within each group all exact
    // reliabilities must agree.
    std::map<std::uint64_t, std::pair<deployment_plan, double>> seen;
    int matched_groups = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const deployment_plan plan = gen.initial_plan(2);
        const std::uint64_t sig = checker.signature(plan);
        const double reliability =
            exact_reliability(f.registry, &f.forest, oracle, app, plan);
        const auto [it, inserted] = seen.try_emplace(sig, plan, reliability);
        if (!inserted) {
            ++matched_groups;
            ASSERT_NEAR(reliability, it->second.second, 1e-12)
                << "plans with equal signatures have different reliability";
        }
    }
    // The fabric is symmetric, so collisions must actually occur — this
    // guards against a vacuous test (e.g. a signature that is always
    // unique).
    EXPECT_GT(matched_groups, 20);
}

TEST(SymmetrySemantics, DistinctReliabilityImpliesDistinctSignature) {
    // Contrapositive check on hand-picked plans: a same-rack pair is less
    // reliable than a cross-rack pair, and the signatures must differ.
    semantic_fixture f;
    const symmetry_checker checker{f.topo, f.registry, &f.forest};
    bfs_reachability oracle{f.topo};
    const application app = application::k_of_n(1, 2);

    deployment_plan same_rack;
    same_rack.hosts = {f.topo.hosts[0], f.topo.hosts[1]};
    deployment_plan cross_rack;
    cross_rack.hosts = {f.topo.hosts[0], f.topo.hosts[2]};

    const double r_same =
        exact_reliability(f.registry, &f.forest, oracle, app, same_rack);
    const double r_cross =
        exact_reliability(f.registry, &f.forest, oracle, app, cross_rack);
    EXPECT_NE(r_same, r_cross);
    EXPECT_NE(checker.signature(same_rack), checker.signature(cross_rack));
}

TEST(SymmetrySemantics, SupplySharingChangesBothSignatureAndReliability) {
    semantic_fixture f;
    const symmetry_checker checker{f.topo, f.registry, &f.forest};
    bfs_reachability oracle{f.topo};
    const application app = application::k_of_n(1, 2);

    // Find two cross-rack pairs, one whose hosts share a supply and one not.
    const auto supply_of = [&](node_id h) {
        return f.power.supplies_of_node[h].front();
    };
    deployment_plan shared;
    deployment_plan diverse;
    const node_id base = f.topo.hosts[0];
    for (const node_id other : f.topo.hosts) {
        if (other == base || rack_of(f.topo.graph, other) ==
                                 rack_of(f.topo.graph, base)) {
            continue;
        }
        if (supply_of(other) == supply_of(base) && shared.hosts.empty()) {
            shared.hosts = {base, other};
        }
        if (supply_of(other) != supply_of(base) && diverse.hosts.empty()) {
            diverse.hosts = {base, other};
        }
    }
    ASSERT_FALSE(shared.hosts.empty());
    ASSERT_FALSE(diverse.hosts.empty());

    const double r_shared =
        exact_reliability(f.registry, &f.forest, oracle, app, shared);
    const double r_diverse =
        exact_reliability(f.registry, &f.forest, oracle, app, diverse);
    EXPECT_GT(r_diverse, r_shared);  // correlated failures hurt
    EXPECT_NE(checker.signature(shared), checker.signature(diverse));
}

}  // namespace
}  // namespace recloud
