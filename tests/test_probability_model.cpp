#include "faults/probability_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/fat_tree.hpp"
#include "util/stats.hpp"

namespace recloud {
namespace {

TEST(ProbabilityModel, ExternalNeverFails) {
    const fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};
    rng random{1};
    assign_paper_probabilities(registry, random);
    EXPECT_EQ(registry.probability(ft.external()), 0.0);
}

TEST(ProbabilityModel, AllProbabilitiesWithinClampRange) {
    const fat_tree ft = fat_tree::build(16);
    component_registry registry{ft.graph()};
    rng random{2};
    const probability_model_options options{};
    assign_paper_probabilities(registry, random, options);
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) == component_kind::external) {
            continue;
        }
        EXPECT_GE(registry.probability(id), options.min_probability);
        EXPECT_LE(registry.probability(id), options.max_probability);
    }
}

TEST(ProbabilityModel, FourDecimalRounding) {
    const fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};
    rng random{3};
    assign_paper_probabilities(registry, random);
    for (component_id id = 0; id < registry.size(); ++id) {
        const double p = registry.probability(id);
        EXPECT_NEAR(p, round_to_decimals(p, 4), 1e-12);
    }
}

TEST(ProbabilityModel, SwitchesFollowSwitchDistribution) {
    const fat_tree ft = fat_tree::build(24);  // enough samples
    component_registry registry{ft.graph()};
    rng random{4};
    assign_paper_probabilities(registry, random);
    running_stats switches;
    running_stats others;
    for (component_id id = 0; id < registry.size(); ++id) {
        switch (registry.kind(id)) {
            case component_kind::edge_switch:
            case component_kind::aggregation_switch:
            case component_kind::core_switch:
            case component_kind::border_switch:
                switches.add(registry.probability(id));
                break;
            case component_kind::host:
                others.add(registry.probability(id));
                break;
            default:
                break;
        }
    }
    EXPECT_NEAR(switches.mean(), 0.008, 0.0005);
    EXPECT_NEAR(others.mean(), 0.01, 0.0005);
    EXPECT_NEAR(switches.stddev(), 0.001, 0.0005);
    EXPECT_NEAR(others.stddev(), 0.001, 0.0005);
}

TEST(ProbabilityModel, PowerSuppliesUseOtherDistribution) {
    // §4.1: "every other component (including power supplies)" ~ N(0.01,...)
    const fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};
    for (int i = 0; i < 200; ++i) {
        (void)registry.add(component_kind::power_supply,
                           "ps" + std::to_string(i));
    }
    rng random{5};
    assign_paper_probabilities(registry, random);
    running_stats supplies;
    for (const component_id id : registry.of_kind(component_kind::power_supply)) {
        supplies.add(registry.probability(id));
    }
    EXPECT_NEAR(supplies.mean(), 0.01, 0.001);
}

TEST(ProbabilityModel, DeterministicPerSeed) {
    const fat_tree ft = fat_tree::build(8);
    component_registry a{ft.graph()};
    component_registry b{ft.graph()};
    rng ra{9};
    rng rb{9};
    assign_paper_probabilities(a, ra);
    assign_paper_probabilities(b, rb);
    for (component_id id = 0; id < a.size(); ++id) {
        EXPECT_EQ(a.probability(id), b.probability(id));
    }
}

TEST(ProbabilityModel, DefaultsFillOnlyUnknowns) {
    const fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};
    registry.set_probability(0, 0.25);  // already known
    assign_default_probabilities(registry, 0.01);
    EXPECT_DOUBLE_EQ(registry.probability(0), 0.25);
    EXPECT_DOUBLE_EQ(registry.probability(1), 0.01);
    EXPECT_DOUBLE_EQ(registry.probability(ft.external()), 0.0);
}

TEST(Bathtub, UsefulLifeIsNearBase) {
    const double base = 0.01;
    EXPECT_NEAR(bathtub_adjusted_probability(base, 0.5), base, base * 0.2);
}

TEST(Bathtub, InfantMortalityAndWearOutAreElevated) {
    const double base = 0.01;
    const double mid = bathtub_adjusted_probability(base, 0.5);
    EXPECT_GT(bathtub_adjusted_probability(base, 0.0), 1.5 * mid);
    EXPECT_GT(bathtub_adjusted_probability(base, 1.0), 1.5 * mid);
}

TEST(Bathtub, ClampsLifeFractionAndProbability) {
    EXPECT_DOUBLE_EQ(bathtub_adjusted_probability(0.9, 1.0),
                     1.0);  // capped at 1
    EXPECT_EQ(bathtub_adjusted_probability(0.01, -5.0),
              bathtub_adjusted_probability(0.01, 0.0));
    EXPECT_EQ(bathtub_adjusted_probability(0.01, 7.0),
              bathtub_adjusted_probability(0.01, 1.0));
}

TEST(ComponentRegistry, GraphSeededRegistryMirrorsKinds) {
    const fat_tree ft = fat_tree::build(8);
    const component_registry registry{ft.graph()};
    EXPECT_EQ(registry.size(), ft.graph().node_count());
    EXPECT_EQ(registry.kind(ft.host(0, 0, 0)), component_kind::host);
    EXPECT_EQ(registry.kind(ft.core(0, 0)), component_kind::core_switch);
    EXPECT_EQ(registry.kind(ft.border(0)), component_kind::border_switch);
    EXPECT_EQ(registry.kind(ft.external()), component_kind::external);
}

TEST(ComponentRegistry, ProbabilityValidation) {
    component_registry registry;
    const component_id id = registry.add(component_kind::other, "x", 0.5);
    EXPECT_THROW(registry.set_probability(id, -0.1), std::invalid_argument);
    EXPECT_THROW(registry.set_probability(id, 1.1), std::invalid_argument);
    EXPECT_THROW((void)registry.add(component_kind::other, "y", 2.0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace recloud
