// Round-verdict memoization (assess/verdict_cache.hpp): support-set
// construction, the signature table's exact-key semantics, and — the load-
// bearing property — bit-identical assessment_stats with the cache on or
// off, across samplers, backends, worker counts, fault trees, and a full
// pinned annealing trajectory (the CacheEquivalence suite; CI re-runs it
// under ASan with RECLOUD_VERDICT_CACHE forced on).
#include "assess/verdict_cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "assess/backend.hpp"
#include "core/recloud.hpp"
#include "exec/engine.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/antithetic.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/power.hpp"

namespace recloud {
namespace {

/// Restores RECLOUD_VERDICT_CACHE on scope exit; tests that depend on the
/// facade's cache switch must control it explicitly (CI force-enables it).
class env_guard {
public:
    explicit env_guard(const char* value) {
        const char* old = std::getenv("RECLOUD_VERDICT_CACHE");
        if (old != nullptr) {
            saved_ = old;
        }
        apply(value);
    }
    ~env_guard() { apply(saved_ ? saved_->c_str() : nullptr); }

private:
    static void apply(const char* value) {
        if (value == nullptr) {
            ::unsetenv("RECLOUD_VERDICT_CACHE");
        } else {
            ::setenv("RECLOUD_VERDICT_CACHE", value, 1);
        }
    }
    std::optional<std::string> saved_;
};

struct cache_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};

    explicit cache_fixture(double probability = 0.03) {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, probability);
            }
        }
    }

    oracle_factory factory() {
        return [this] { return std::make_unique<bfs_reachability>(topo); };
    }

    deployment_plan plan_for(const application& app) {
        deployment_plan plan;
        for (std::uint32_t i = 0; i < app.total_instances(); ++i) {
            plan.hosts.push_back(topo.hosts[(i * 5) % topo.hosts.size()]);
        }
        return plan;
    }

    verdict_support support() {
        return verdict_support{topo, registry.size(), &forest, nullptr};
    }
};

void expect_identical(const assessment_stats& a, const assessment_stats& b) {
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.reliable, b.reliable);
    EXPECT_EQ(a.reliability, b.reliability);
    EXPECT_EQ(a.variance, b.variance);
    EXPECT_EQ(a.ciw95, b.ciw95);
}

// ---- support set --------------------------------------------------------

TEST(VerdictSupport, RoutingNodesInLeafHostsOut) {
    cache_fixture f;
    const verdict_support support = f.support();
    std::size_t expected = 0;
    for (node_id node = 0; node < f.topo.graph.node_count(); ++node) {
        const bool is_leaf_host = f.topo.graph.kind(node) == node_kind::host &&
                                  f.topo.graph.degree(node) <= 1;
        EXPECT_EQ(support.contains_static(node), !is_leaf_host)
            << "node " << node;
        expected += is_leaf_host ? 0 : 1;
    }
    EXPECT_EQ(support.static_size(), expected);
    EXPECT_EQ(support.component_count(), f.registry.size());
}

TEST(VerdictSupport, IncludesLinksAndFaultTreeDependencies) {
    cache_fixture f;
    const link_attachment links = attach_link_components(f.topo, f.registry);
    const power_assignment power = attach_power_supplies(
        f.topo, f.registry, f.forest, {.supply_count = 3});
    (void)power;
    const verdict_support support{f.topo, f.registry.size(), &f.forest, &links};
    for (const component_id link : links.component_of_edge) {
        if (link != invalid_node) {
            EXPECT_TRUE(support.contains_static(link));
        }
    }
    // Every static member's fault-tree leaves (e.g. a switch's power supply)
    // must be in the key too — their raw failure flips the member's
    // effective state.
    for (node_id node = 0; node < f.topo.graph.node_count(); ++node) {
        if (!support.contains_static(node)) {
            continue;
        }
        for (const component_id dep : f.forest.dependencies_of(node)) {
            EXPECT_TRUE(support.contains_static(dep))
                << "dep " << dep << " of member " << node;
        }
    }
}

// ---- cache mechanics ----------------------------------------------------

TEST(VerdictCache, LookupBeforeBindThrows) {
    cache_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support};
    const std::vector<component_id> failed;
    EXPECT_THROW((void)cache.lookup(failed), std::logic_error);
    EXPECT_THROW(cache.store(true), std::logic_error);
}

TEST(VerdictCache, EmptyRoundFastPathComputedOnce) {
    cache_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support};
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    cache.bind(app, plan);

    const std::vector<component_id> none;
    auto first = cache.lookup(none);
    EXPECT_FALSE(first.hit);
    cache.store(true);
    auto second = cache.lookup(none);
    EXPECT_TRUE(second.hit);
    EXPECT_TRUE(second.verdict);
    EXPECT_EQ(cache.stats().empty_hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    // A failed set entirely outside the support filters down to empty and
    // takes the same fast path: pick a degree-1 host that is not in the plan.
    node_id outside = invalid_node;
    for (const node_id h : f.topo.hosts) {
        if (!cache.in_support(h)) {
            outside = h;
            break;
        }
    }
    ASSERT_NE(outside, invalid_node);
    const std::vector<component_id> off_support = {outside};
    auto third = cache.lookup(off_support);
    EXPECT_TRUE(third.hit);
    EXPECT_TRUE(third.verdict);
    EXPECT_EQ(cache.stats().empty_hits, 2u);
}

TEST(VerdictCache, SupportFilterCollapsesSignatures) {
    cache_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support};
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    cache.bind(app, plan);

    node_id outside = invalid_node;
    for (const node_id h : f.topo.hosts) {
        if (!cache.in_support(h)) {
            outside = h;
            break;
        }
    }
    ASSERT_NE(outside, invalid_node);
    const node_id spine = f.topo.graph.nodes_of_kind(node_kind::core_switch)[0];

    const std::vector<component_id> raw_a = {spine};
    const std::vector<component_id> raw_b = {outside, spine};
    EXPECT_FALSE(cache.lookup(raw_a).hit);
    cache.store(false);
    const auto b = cache.lookup(raw_b);  // same filtered signature
    EXPECT_TRUE(b.hit);
    EXPECT_FALSE(b.verdict);
    ASSERT_EQ(cache.last_key().size(), 1u);
    EXPECT_EQ(cache.last_key()[0], spine);
}

TEST(VerdictCache, KeyIsOrderInsensitive) {
    cache_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support};
    const application app = application::k_of_n(2, 3);
    cache.bind(app, f.plan_for(app));

    const auto spines = f.topo.graph.nodes_of_kind(node_kind::core_switch);
    ASSERT_GE(spines.size(), 2u);
    const std::vector<component_id> ab = {spines[0], spines[1]};
    const std::vector<component_id> ba = {spines[1], spines[0]};
    EXPECT_FALSE(cache.lookup(ab).hit);
    cache.store(true);
    EXPECT_TRUE(cache.lookup(ba).hit);
}

TEST(VerdictCache, RebindResetsOnlyOnRealChange) {
    cache_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support};
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan_a = f.plan_for(app);
    deployment_plan plan_b = plan_a;
    plan_b.hosts[0] = f.topo.hosts[(f.topo.hosts.size() - 1)];

    cache.bind(app, plan_a);
    const node_id spine = f.topo.graph.nodes_of_kind(node_kind::core_switch)[0];
    const std::vector<component_id> key = {spine};
    EXPECT_FALSE(cache.lookup(key).hit);
    cache.store(true);
    EXPECT_EQ(cache.stats().rebinds, 1u);

    cache.bind(app, plan_a);  // identical binding: warm
    EXPECT_EQ(cache.stats().rebinds, 1u);
    EXPECT_TRUE(cache.lookup(key).hit);

    cache.bind(app, plan_b);  // different hosts: cold
    EXPECT_EQ(cache.stats().rebinds, 2u);
    EXPECT_FALSE(cache.lookup(key).hit);
    cache.store(false);
}

TEST(VerdictCache, PlanHostsAndTheirDependenciesJoinSupport) {
    cache_fixture f;
    const power_assignment power = attach_power_supplies(
        f.topo, f.registry, f.forest, {.supply_count = 3});
    (void)power;
    const verdict_support support{f.topo, f.registry.size(), &f.forest, nullptr};
    verdict_cache cache{support};
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    EXPECT_FALSE(support.contains_static(plan.hosts[0]));
    cache.bind(app, plan);
    for (const node_id host : plan.hosts) {
        EXPECT_TRUE(cache.in_support(host));
        for (const component_id dep : f.forest.dependencies_of(host)) {
            EXPECT_TRUE(cache.in_support(dep));
        }
    }
    EXPECT_GT(cache.support_size(), support.static_size());
    EXPECT_EQ(cache.stats().support_size, cache.support_size());
}

TEST(VerdictCache, BoundedTableEvictsWholesaleAndStaysCorrect) {
    cache_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support, 4};  // tiny: force resets
    const application app = application::k_of_n(2, 3);
    cache.bind(app, f.plan_for(app));

    // Insert more distinct signatures than capacity; every re-lookup must
    // either hit with the right verdict or miss — never return a wrong bit.
    const auto spines = f.topo.graph.nodes_of_kind(node_kind::core_switch);
    const auto leaves = f.topo.graph.nodes_of_kind(node_kind::edge_switch);
    std::vector<std::vector<component_id>> keys;
    for (const node_id s : spines) {
        keys.push_back({s});
    }
    for (const node_id l : leaves) {
        keys.push_back({l});
        keys.push_back({spines[0], l});
    }
    ASSERT_GT(keys.size(), 4u);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (!cache.lookup(keys[i]).hit) {
            cache.store(i % 2 == 0);
        }
    }
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_LE(cache.entries(), 4u);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto r = cache.lookup(keys[i]);
        if (r.hit) {
            EXPECT_EQ(r.verdict, i % 2 == 0) << "key " << i;
        } else {
            cache.store(i % 2 == 0);
        }
    }
}

// ---- equivalence: cache on == cache off, bit for bit --------------------

TEST(CacheEquivalence, SerialAcrossSamplers) {
    cache_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    const verdict_support support = f.support();
    const auto make = [&](int kind,
                          std::uint64_t seed) -> std::unique_ptr<failure_sampler> {
        switch (kind) {
            case 0:
                return std::make_unique<monte_carlo_sampler>(
                    f.registry.probabilities(), seed);
            case 1:
                return std::make_unique<antithetic_sampler>(
                    f.registry.probabilities(), seed);
            default:
                return std::make_unique<extended_dagger_sampler>(
                    f.registry.probabilities(), seed);
        }
    };
    for (int kind = 0; kind < 3; ++kind) {
        const auto run = [&](bool cached) {
            auto sampler = make(kind, 57);
            bfs_reachability oracle{f.topo};
            verdict_cache_options options;
            options.enabled = cached;
            options.support = &support;
            serial_backend backend{f.registry.size(), &f.forest, oracle,
                                   *sampler, options};
            const assessment_stats stats = backend.assess(app, plan, 4000);
            if (cached) {
                EXPECT_NE(backend.cache_stats(), nullptr);
                if (backend.cache_stats() != nullptr) {
                    EXPECT_EQ(backend.cache_stats()->rounds, 4000u);
                    EXPECT_GT(backend.cache_stats()->saved_rounds(), 0u);
                }
            } else {
                EXPECT_EQ(backend.cache_stats(), nullptr);
            }
            return stats;
        };
        const assessment_stats off = run(false);
        const assessment_stats on = run(true);
        expect_identical(on, off);
    }
}

TEST(CacheEquivalence, ParallelAcrossWorkerCounts) {
    cache_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    const verdict_support support = f.support();
    std::optional<assessment_stats> reference;
    for (const std::size_t workers : {1u, 2u, 8u}) {
        for (const bool cached : {false, true}) {
            extended_dagger_sampler sampler{f.registry.probabilities(), 33};
            parallel_backend_options options{.threads = workers,
                                             .batch_rounds = 250};
            options.verdict_cache.enabled = cached;
            options.verdict_cache.support = &support;
            parallel_backend backend{f.registry.size(), &f.forest, f.factory(),
                                     sampler, options};
            const assessment_stats stats = backend.assess(app, plan, 3000);
            if (!reference) {
                reference = stats;
            } else {
                expect_identical(stats, *reference);
            }
            if (cached) {
                ASSERT_NE(backend.cache_stats(), nullptr);
                EXPECT_EQ(backend.cache_stats()->rounds, 3000u);
            }
        }
    }
}

TEST(CacheEquivalence, EngineBackendBitIdentical) {
    cache_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    const verdict_support support = f.support();
    const auto run = [&](bool cached) {
        extended_dagger_sampler sampler{f.registry.probabilities(), 19};
        engine_options options{.workers = 2, .batch_rounds = 200};
        options.verdict_cache.enabled = cached;
        options.verdict_cache.support = &support;
        engine_backend backend{f.registry.size(), &f.forest, f.factory(),
                               sampler, options};
        const assessment_stats stats = backend.assess(app, plan, 2000);
        if (cached) {
            EXPECT_NE(backend.cache_stats(), nullptr);
            EXPECT_EQ(backend.cache_stats()->rounds, 2000u);
        } else {
            EXPECT_EQ(backend.cache_stats(), nullptr);
        }
        return stats;
    };
    expect_identical(run(true), run(false));
}

TEST(CacheEquivalence, AdaptiveAssessUntilCiw) {
    cache_fixture f;
    const application app = application::k_of_n(1, 3);
    const deployment_plan plan = f.plan_for(app);
    const verdict_support support = f.support();
    const auto run = [&](bool cached) {
        extended_dagger_sampler sampler{f.registry.probabilities(), 41};
        bfs_reachability oracle{f.topo};
        verdict_cache_options options;
        options.enabled = cached;
        options.support = &support;
        serial_backend backend{f.registry.size(), &f.forest, oracle, sampler,
                               options};
        adaptive_assess_options adaptive;
        adaptive.target_ciw = 2e-2;
        adaptive.initial_rounds = 500;
        adaptive.max_rounds = 100'000;
        return backend.assess_until_ciw(app, plan, adaptive);
    };
    expect_identical(run(true), run(false));
}

TEST(CacheEquivalence, TinyEvictingCacheStillIdentical) {
    // Correctness must not depend on capacity: a 2-entry cache thrashes
    // (every store may wipe the table) yet must stay bit-identical.
    cache_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    const verdict_support support = f.support();
    const auto run = [&](bool cached) {
        extended_dagger_sampler sampler{f.registry.probabilities(), 91};
        bfs_reachability oracle{f.topo};
        verdict_cache_options options;
        options.enabled = cached;
        options.max_entries = 2;
        options.support = &support;
        serial_backend backend{f.registry.size(), &f.forest, oracle, sampler,
                               options};
        return backend.assess(app, plan, 4000);
    };
    expect_identical(run(true), run(false));
}

void expect_same_search(const deployment_response& on,
                        const deployment_response& off) {
    EXPECT_EQ(on.plan, off.plan);
    expect_identical(on.stats, off.stats);
    EXPECT_EQ(on.search.plans_evaluated, off.search.plans_evaluated);
    EXPECT_EQ(on.search.plans_generated, off.search.plans_generated);
    EXPECT_EQ(on.search.symmetric_skips, off.search.symmetric_skips);
    EXPECT_EQ(on.fulfilled, off.fulfilled);
}

recloud_options pinned_search_options(bool cached) {
    recloud_options options;
    options.assessment_rounds = 1000;
    options.max_iterations = 25;
    options.seed = 9;
    options.verdict_cache = cached;
    return options;
}

TEST(CacheEquivalence, SearchTrajectoryPinnedWithForest) {
    // The flagship facade property: a full annealing search — CRN resets,
    // symmetry skips, winner re-assessment — lands on the identical plan,
    // identical stats, identical search counters with the cache on or off.
    // Fat-tree infrastructure carries power-supply fault trees, so the
    // support set includes tree dependencies here.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    const auto run = [&](bool cached) {
        env_guard env{cached ? "1" : "0"};
        re_cloud system{infra, pinned_search_options(cached)};
        deployment_request request{application::k_of_n(2, 3), 1.0,
                                   std::chrono::seconds{20}};
        return system.find_deployment(request);
    };
    const deployment_response off = run(false);
    const deployment_response on = run(true);
    expect_same_search(on, off);
}

TEST(CacheEquivalence, SearchTrajectoryPinnedWithoutForest) {
    // §3.4 limited information: no fault trees at all. The cache key is
    // then the raw support-filtered failed set with no dependency closure.
    cache_fixture f;
    workload_map workloads = [&f] {
        rng random{3};
        return workload_map{f.topo, random};
    }();
    bfs_reachability oracle{f.topo};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(f.topo)
                                      .registry(f.registry)
                                      .oracle(oracle)
                                      .workloads(workloads)
                                      .freeze();
    const auto run = [&](bool cached) {
        env_guard env{cached ? "1" : "0"};
        re_cloud system{snapshot, pinned_search_options(cached)};
        deployment_request request{application::k_of_n(2, 3), 1.0,
                                   std::chrono::seconds{20}};
        return system.find_deployment(request);
    };
    const deployment_response off = run(false);
    const deployment_response on = run(true);
    expect_same_search(on, off);
}

TEST(CacheEquivalence, EnvVarOverridesOptions) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options on_options;
    on_options.verdict_cache = true;
    recloud_options off_options;
    off_options.verdict_cache = false;
    {
        env_guard env{"0"};
        re_cloud system{infra, on_options};
        EXPECT_EQ(system.cache_stats(), nullptr);
    }
    {
        env_guard env{"1"};
        re_cloud system{infra, off_options};
        EXPECT_NE(system.cache_stats(), nullptr);
    }
    {
        env_guard env{nullptr};
        re_cloud system{infra, off_options};
        EXPECT_EQ(system.cache_stats(), nullptr);
    }
}

TEST(VerdictCacheStats, ObservabilityCountersAddUp) {
    // With realistic (low) failure probabilities nearly every round is
    // empty after support filtering — the regime the cache is built for.
    cache_fixture f{1e-4};
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    const verdict_support support = f.support();
    extended_dagger_sampler sampler{f.registry.probabilities(), 7};
    bfs_reachability oracle{f.topo};
    verdict_cache_options options;
    options.enabled = true;
    options.support = &support;
    serial_backend backend{f.registry.size(), &f.forest, oracle, sampler,
                           options};
    (void)backend.assess(app, plan, 5000);
    const verdict_cache_stats* stats = backend.cache_stats();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->rounds, 5000u);
    EXPECT_EQ(stats->saved_rounds(), stats->empty_hits + stats->hits);
    EXPECT_EQ(stats->rounds, stats->saved_rounds() + stats->misses);
    EXPECT_GT(stats->hit_rate(), 0.5);
    EXPECT_GT(stats->support_size, 0u);
    EXPECT_EQ(stats->rebinds, 1u);
}

}  // namespace
}  // namespace recloud
