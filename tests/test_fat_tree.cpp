#include "topology/fat_tree.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "topology/stats.hpp"

namespace recloud {
namespace {

// ---- Table 2 of the paper, verbatim ------------------------------------
struct table2_row {
    data_center_scale scale;
    int k;
    std::size_t core;
    std::size_t agg;
    std::size_t edge;
    std::size_t border;
    std::size_t hosts;
};

class FatTreeTable2 : public ::testing::TestWithParam<table2_row> {};

TEST_P(FatTreeTable2, MatchesPaperCounts) {
    const table2_row row = GetParam();
    const fat_tree ft = fat_tree::build(row.scale);
    const topology_stats stats = compute_topology_stats(ft.topology());
    EXPECT_EQ(ft.k(), row.k);
    EXPECT_EQ(stats.core_switches, row.core);
    EXPECT_EQ(stats.aggregation_switches, row.agg);
    EXPECT_EQ(stats.edge_switches, row.edge);
    EXPECT_EQ(stats.border_switches, row.border);
    EXPECT_EQ(stats.hosts, row.hosts);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, FatTreeTable2,
    ::testing::Values(
        table2_row{data_center_scale::tiny, 8, 16, 28, 28, 4, 112},
        table2_row{data_center_scale::small, 16, 64, 120, 120, 8, 960},
        table2_row{data_center_scale::medium, 24, 144, 276, 276, 12, 3312},
        table2_row{data_center_scale::large, 48, 576, 1128, 1128, 24, 27072}),
    [](const auto& info) { return to_string(info.param.scale); });

// ---- structural invariants, parameterized over k ------------------------
class FatTreeStructure : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeStructure, PortCountsRespectK) {
    const int k = GetParam();
    const fat_tree ft = fat_tree::build(k);
    const network_graph& g = ft.graph();
    const int gw = k / 2;
    for (node_id id = 0; id < g.node_count(); ++id) {
        switch (g.kind(id)) {
            case node_kind::host:
                EXPECT_EQ(g.degree(id), 1u);
                break;
            case node_kind::edge_switch:
            case node_kind::aggregation_switch:
                EXPECT_EQ(g.degree(id), static_cast<std::size_t>(k));
                break;
            case node_kind::core_switch:
                // One regular pod link per pod + one border link = k.
                EXPECT_EQ(g.degree(id), static_cast<std::size_t>(k));
                break;
            case node_kind::border_switch:
                // g core uplinks + the external peering.
                EXPECT_EQ(g.degree(id), static_cast<std::size_t>(gw + 1));
                break;
            case node_kind::external:
                EXPECT_EQ(g.degree(id), static_cast<std::size_t>(gw));
                break;
        }
    }
}

TEST_P(FatTreeStructure, ArithmeticAddressingMatchesWiring) {
    const int k = GetParam();
    const fat_tree ft = fat_tree::build(k);
    const network_graph& g = ft.graph();
    const int gw = k / 2;
    for (int p = 0; p < ft.pod_count(); ++p) {
        for (int j = 0; j < gw; ++j) {
            EXPECT_EQ(g.kind(ft.aggregation(p, j)), node_kind::aggregation_switch);
            for (int i = 0; i < gw; ++i) {
                EXPECT_TRUE(g.has_edge(ft.aggregation(p, j), ft.core(j, i)));
            }
            for (int e = 0; e < gw; ++e) {
                EXPECT_TRUE(g.has_edge(ft.aggregation(p, j), ft.edge(p, e)));
            }
        }
    }
    for (int j = 0; j < gw; ++j) {
        EXPECT_EQ(g.kind(ft.border(j)), node_kind::border_switch);
        for (int i = 0; i < gw; ++i) {
            EXPECT_TRUE(g.has_edge(ft.border(j), ft.core(j, i)));
        }
        EXPECT_TRUE(g.has_edge(ft.border(j), ft.external()));
    }
}

TEST_P(FatTreeStructure, HostReverseLookups) {
    const int k = GetParam();
    const fat_tree ft = fat_tree::build(k);
    const int gw = k / 2;
    for (int p = 0; p < ft.pod_count(); ++p) {
        for (int e = 0; e < gw; ++e) {
            for (int h = 0; h < gw; ++h) {
                const node_id host = ft.host(p, e, h);
                EXPECT_TRUE(ft.is_host(host));
                EXPECT_EQ(ft.pod_of_host(host), p);
                EXPECT_EQ(ft.edge_index_of_host(host), e);
                EXPECT_EQ(ft.edge_of_host(host), ft.edge(p, e));
                EXPECT_TRUE(ft.graph().has_edge(host, ft.edge_of_host(host)));
            }
        }
    }
    EXPECT_FALSE(ft.is_host(ft.core(0, 0)));
    EXPECT_FALSE(ft.is_host(ft.aggregation(0, 0)));
    EXPECT_FALSE(ft.is_host(ft.border(0)));
    EXPECT_FALSE(ft.is_host(ft.external()));
}

TEST_P(FatTreeStructure, HostListMatchesGraph) {
    const fat_tree ft = fat_tree::build(GetParam());
    const std::set<node_id> listed(ft.topology().hosts.begin(),
                                   ft.topology().hosts.end());
    EXPECT_EQ(listed.size(), ft.topology().hosts.size());  // no duplicates
    EXPECT_EQ(listed.size(), ft.graph().count_of_kind(node_kind::host));
    for (const node_id h : listed) {
        EXPECT_EQ(ft.graph().kind(h), node_kind::host);
    }
}

INSTANTIATE_TEST_SUITE_P(VariousK, FatTreeStructure, ::testing::Values(4, 6, 8, 12, 16));

TEST(FatTree, RejectsInvalidK) {
    EXPECT_THROW((void)fat_tree::build(3), std::invalid_argument);
    EXPECT_THROW((void)fat_tree::build(7), std::invalid_argument);
    EXPECT_THROW((void)fat_tree::build(2), std::invalid_argument);
    EXPECT_THROW((void)fat_tree::build(0), std::invalid_argument);
    EXPECT_THROW((void)fat_tree::build(-4), std::invalid_argument);
}

TEST(FatTree, ScalePresetKs) {
    EXPECT_EQ(fat_tree_k_for(data_center_scale::tiny), 8);
    EXPECT_EQ(fat_tree_k_for(data_center_scale::small), 16);
    EXPECT_EQ(fat_tree_k_for(data_center_scale::medium), 24);
    EXPECT_EQ(fat_tree_k_for(data_center_scale::large), 48);
}

TEST(FatTree, HostsPerPodAndEdge) {
    const fat_tree ft = fat_tree::build(8);
    EXPECT_EQ(ft.group_width(), 4);
    EXPECT_EQ(ft.pod_count(), 7);
    EXPECT_EQ(ft.hosts_per_pod(), 16);
    EXPECT_EQ(ft.hosts_per_edge(), 4);
}

}  // namespace
}  // namespace recloud
