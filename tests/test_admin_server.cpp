// Live introspection endpoint (obs/admin_server.hpp): the Prometheus text
// renderer's name mapping and histogram rules, the poll()-based server's
// routes / failure isolation / bounded-request handling over real
// Unix-domain sockets (hammered from many threads under the sanitizer
// jobs), and the deployment service's wiring of /status + the per-shard
// queue gauges.
#include "obs/admin_server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/recloud.hpp"
#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "service/deployment_service.hpp"

namespace recloud {
namespace {

/// ctest runs each case as its own process in parallel: the path must be
/// unique per (process, test) or concurrent binds would race on /tmp.
std::string test_socket_path(const std::string& tag) {
    return "/tmp/recloud-admin-test-" + std::to_string(::getpid()) + "-" +
           tag + ".sock";
}

/// Minimal blocking HTTP client over a Unix-domain socket: sends `request`
/// verbatim, reads to EOF (the server is HTTP/1.0, Connection: close).
/// Returns the raw response; empty when the connection failed outright.
std::string raw_request(const std::string& socket_path,
                        const std::string& request) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return {};
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            break;  // server may 400 + close before draining our bytes
        }
        sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char buffer[4096];
    while (true) {
        const ssize_t n = ::read(fd, buffer, sizeof buffer);
        if (n > 0) {
            response.append(buffer, static_cast<std::size_t>(n));
        } else if (n == 0 || errno != EINTR) {
            break;
        }
    }
    ::close(fd);
    return response;
}

std::string http_get(const std::string& socket_path, const std::string& path) {
    return raw_request(socket_path, "GET " + path + " HTTP/1.0\r\n\r\n");
}

/// Connects, sends a partial request and hangs up without ever reading —
/// the rude client the poll loop must reap on read() == 0.
void connect_and_hang_up(const std::string& socket_path,
                         const std::string& partial) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0 &&
        !partial.empty()) {
        (void)::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL);
    }
    ::close(fd);
}

obs::metric_entry scalar(std::string name, obs::metric_kind kind,
                         std::uint64_t value) {
    obs::metric_entry entry;
    entry.name = std::move(name);
    entry.kind = kind;
    entry.value = value;
    return entry;
}

// ---- Prometheus renderer --------------------------------------------------

TEST(AdminServer, PrometheusNameMappingLiftsNumericSegmentsToLabels) {
    obs::telemetry_snapshot snap;
    snap.metrics.push_back(
        scalar("assess.rounds", obs::metric_kind::counter, 7));
    snap.metrics.push_back(
        scalar("service.shard.3.queue_depth", obs::metric_kind::gauge, 5));
    snap.metrics.push_back(
        scalar("worker.0.cache.stats.hits", obs::metric_kind::gauge, 9));
    const std::string text = obs::prometheus_exposition(snap);
    EXPECT_NE(text.find("# TYPE recloud_assess_rounds counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("recloud_assess_rounds 7\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE recloud_service_shard_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("recloud_service_shard_queue_depth{shard=\"3\"} 5\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("recloud_worker_cache_stats_hits{worker=\"0\"} 9\n"),
        std::string::npos);
}

TEST(AdminServer, PrometheusFamiliesAreContiguousAcrossLiftedLabels) {
    // The registry snapshot interleaves shard 0/1 depth and peak by name;
    // the exposition must regroup them so each family's samples sit under
    // one TYPE line (a real Prometheus server rejects interleaving).
    obs::telemetry_snapshot snap;
    snap.metrics.push_back(scalar("service.shard.0.queue_depth",
                                  obs::metric_kind::gauge, 1));
    snap.metrics.push_back(scalar("service.shard.0.queue_peak",
                                  obs::metric_kind::gauge, 2));
    snap.metrics.push_back(scalar("service.shard.1.queue_depth",
                                  obs::metric_kind::gauge, 3));
    snap.metrics.push_back(scalar("service.shard.1.queue_peak",
                                  obs::metric_kind::gauge, 4));
    const std::string text = obs::prometheus_exposition(snap);
    const std::size_t depth0 =
        text.find("recloud_service_shard_queue_depth{shard=\"0\"} 1");
    const std::size_t depth1 =
        text.find("recloud_service_shard_queue_depth{shard=\"1\"} 3");
    const std::size_t peak_type =
        text.find("# TYPE recloud_service_shard_queue_peak");
    ASSERT_NE(depth0, std::string::npos);
    ASSERT_NE(depth1, std::string::npos);
    ASSERT_NE(peak_type, std::string::npos);
    EXPECT_LT(depth0, depth1);
    EXPECT_LT(depth1, peak_type);
}

TEST(AdminServer, PrometheusHistogramIsCumulativeWithInfBucket) {
    obs::metric_entry entry;
    entry.name = "engine.batch.ns";
    entry.kind = obs::metric_kind::histogram;
    entry.histogram.count = 4;
    entry.histogram.sum = 10;
    entry.histogram.buckets[0] = 1;  // value 0
    entry.histogram.buckets[1] = 2;  // values in [1, 2]
    entry.histogram.buckets[3] = 1;  // values in [7, 14]
    obs::telemetry_snapshot snap;
    snap.metrics.push_back(std::move(entry));
    const std::string text = obs::prometheus_exposition(snap);
    EXPECT_NE(text.find("# TYPE recloud_engine_batch_ns histogram\n"),
              std::string::npos);
    const std::size_t b0 =
        text.find("recloud_engine_batch_ns_bucket{le=\"0\"} 1\n");
    const std::size_t b1 =
        text.find("recloud_engine_batch_ns_bucket{le=\"2\"} 3\n");
    const std::size_t b3 =
        text.find("recloud_engine_batch_ns_bucket{le=\"14\"} 4\n");
    const std::size_t binf =
        text.find("recloud_engine_batch_ns_bucket{le=\"+Inf\"} 4\n");
    ASSERT_NE(b0, std::string::npos);
    ASSERT_NE(b1, std::string::npos);
    ASSERT_NE(b3, std::string::npos);
    ASSERT_NE(binf, std::string::npos);
    EXPECT_LT(b0, b1);
    EXPECT_LT(b1, b3);
    EXPECT_LT(b3, binf);
    EXPECT_NE(text.find("recloud_engine_batch_ns_sum 10\n"),
              std::string::npos);
    EXPECT_NE(text.find("recloud_engine_batch_ns_count 4\n"),
              std::string::npos);
}

// ---- server over real sockets ---------------------------------------------

obs::admin_endpoints full_endpoints() {
    obs::admin_endpoints endpoints;
    endpoints.metrics = [] {
        obs::telemetry_snapshot snap;
        snap.metrics.push_back(
            scalar("assess.rounds", obs::metric_kind::counter, 1));
        return snap;
    };
    endpoints.status_json = [] {
        return std::string{"{\"status\":\"ok\",\"shards\":2}\n"};
    };
    endpoints.trace_json = [] {
        return std::string{"{\"traceEvents\":[]}\n"};
    };
    return endpoints;
}

TEST(AdminServer, ServesEveryRouteOverAUnixSocket) {
    const std::string path = test_socket_path("routes");
    obs::admin_server server{path, full_endpoints()};
    EXPECT_EQ(server.socket_path(), path);

    const std::string metrics = http_get(path, "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(metrics.find("recloud_assess_rounds 1"), std::string::npos);

    const std::string healthz = http_get(path, "/healthz");
    EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(healthz.find("{\"status\":\"ok\"}"), std::string::npos);

    const std::string status = http_get(path, "/status");
    EXPECT_NE(status.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(status.find("\"shards\":2"), std::string::npos);

    const std::string trace = http_get(path, "/trace");
    EXPECT_NE(trace.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(trace.find("traceEvents"), std::string::npos);

    // Query strings are stripped before routing.
    EXPECT_NE(http_get(path, "/status?verbose=1").find("HTTP/1.0 200 OK"),
              std::string::npos);

    const std::string missing = http_get(path, "/nope");
    EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);
    EXPECT_NE(missing.find("/metrics"), std::string::npos);  // route list

    const std::string post =
        raw_request(path, "POST /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(post.find("HTTP/1.0 405 Method Not Allowed"),
              std::string::npos);

    const obs::admin_server_stats stats = server.stats();
    EXPECT_GE(stats.connections, 7u);  // one per exchange above
    EXPECT_GE(stats.requests, 6u);     // the GETs (POST counts as an error)
}

TEST(AdminServer, NullCallbackRoutes404) {
    const std::string path = test_socket_path("nullcb");
    obs::admin_endpoints endpoints;
    endpoints.metrics = [] { return obs::telemetry_snapshot{}; };
    obs::admin_server server{path, endpoints};
    EXPECT_NE(http_get(path, "/metrics").find("HTTP/1.0 200 OK"),
              std::string::npos);
    EXPECT_NE(http_get(path, "/status").find("HTTP/1.0 404"),
              std::string::npos);
    EXPECT_NE(http_get(path, "/trace").find("HTTP/1.0 404"),
              std::string::npos);
}

TEST(AdminServer, ThrowingHandlerBecomes500AndServerSurvives) {
    const std::string path = test_socket_path("throw");
    obs::admin_endpoints endpoints = full_endpoints();
    endpoints.status_json = []() -> std::string {
        throw std::runtime_error{"snapshot race"};
    };
    obs::admin_server server{path, endpoints};
    const std::string status = http_get(path, "/status");
    EXPECT_NE(status.find("HTTP/1.0 500 Internal Server Error"),
              std::string::npos);
    // The throw stayed on the handler path: the server keeps serving.
    EXPECT_NE(http_get(path, "/healthz").find("HTTP/1.0 200 OK"),
              std::string::npos);
    EXPECT_GE(server.stats().errors, 1u);
}

TEST(AdminServer, OversizedRequestIsRejectedWith400) {
    const std::string path = test_socket_path("oversized");
    obs::admin_server server{path, full_endpoints()};
    const std::string huge = "GET /" + std::string(5000, 'a');  // no CRLF end
    const std::string response = raw_request(path, huge);
    EXPECT_NE(response.find("HTTP/1.0 400 Bad Request"), std::string::npos);
}

TEST(AdminServer, MalformedRequestLineIs400) {
    const std::string path = test_socket_path("garbage");
    obs::admin_server server{path, full_endpoints()};
    const std::string response = raw_request(path, "\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 400 Bad Request"), std::string::npos);
}

TEST(AdminServer, HammerManyConcurrentClients) {
    // Mixed well-formed, bogus-path, wrong-method and half-closed clients
    // from several threads: every completed exchange must carry an HTTP
    // status line, and the server must survive it all (the sanitizer jobs
    // run this with ASan/TSan watching the poll loop and client buffers).
    const std::string path = test_socket_path("hammer");
    obs::admin_server server{path, full_endpoints()};
    constexpr std::size_t k_threads = 6;
    constexpr std::size_t k_iterations = 40;
    const std::vector<std::string> gets{"/metrics", "/status", "/healthz",
                                        "/trace", "/bogus"};
    std::atomic<std::size_t> missing_responses{0};
    std::vector<std::thread> clients;
    clients.reserve(k_threads);
    for (std::size_t t = 0; t < k_threads; ++t) {
        clients.emplace_back([&, t] {
            for (std::size_t i = 0; i < k_iterations; ++i) {
                const std::size_t pick = (t + i) % (gets.size() + 2);
                std::string response;
                if (pick < gets.size()) {
                    response = http_get(path, gets[pick]);
                } else if (pick == gets.size()) {
                    response =
                        raw_request(path, "PUT /metrics HTTP/1.0\r\n\r\n");
                } else {
                    // Rude client: partial request, then hang up without
                    // reading; no response expected.
                    connect_and_hang_up(path, i % 2 == 0 ? "" : "GET /me");
                    continue;
                }
                if (response.find("HTTP/1.0 ") == std::string::npos) {
                    missing_responses.fetch_add(1);
                }
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    EXPECT_EQ(missing_responses.load(), 0u);
    const obs::admin_server_stats stats = server.stats();
    EXPECT_GE(stats.requests, k_threads * k_iterations / 2);
    EXPECT_GE(stats.connections, stats.requests);
}

TEST(AdminServer, StopIsIdempotentAndUnlinksTheSocket) {
    const std::string path = test_socket_path("stop");
    obs::admin_server server{path, full_endpoints()};
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
    server.stop();
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
    EXPECT_TRUE(http_get(path, "/healthz").empty());
    server.stop();  // idempotent; destructor will stop() again
}

TEST(AdminServer, OverlongSocketPathThrows) {
    const std::string path = "/tmp/" + std::string(200, 'x') + ".sock";
    EXPECT_THROW((obs::admin_server{path, full_endpoints()}),
                 std::runtime_error);
}

// ---- deployment-service wiring --------------------------------------------

TEST(AdminServer, ServiceServesStatusAndShardQueueGauges) {
    const std::string path = test_socket_path("service");
    service_options options;
    options.workers = 1;
    options.shards = 2;
    options.admin_socket = path;
    options.defaults.assessment_rounds = 200;
    options.defaults.max_iterations = 6;
    options.defaults.deterministic_schedule = true;
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    service_request request;
    request.scenario = "dc";
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{30};
    request.seed = 11;
    const service_response response = service.submit(request).get();
    EXPECT_EQ(response.status, request_status::completed);

    const std::string status = http_get(path, "/status");
    EXPECT_NE(status.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(status.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(status.find("\"shards\":2"), std::string::npos);
    EXPECT_NE(status.find("\"submitted\":1"), std::string::npos);
    EXPECT_NE(status.find("\"shard_queue_depth\":[0,0]"), std::string::npos);

    const std::string metrics = http_get(path, "/metrics");
    EXPECT_NE(metrics.find(
                  "recloud_service_shard_queue_depth{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find(
                  "recloud_service_shard_queue_depth{shard=\"1\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("recloud_service_shard_queue_peak{shard=\"1\"}"),
              std::string::npos);

    EXPECT_NE(http_get(path, "/healthz").find("HTTP/1.0 200 OK"),
              std::string::npos);

    service.shutdown();
    // Shutdown tears the endpoint down with the fleet (and before the
    // shards, so an in-flight /status can never observe freed state).
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace recloud
