#include "search/symmetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topology/fat_tree.hpp"
#include "topology/power.hpp"

namespace recloud {
namespace {

/// Fat-tree with perfectly uniform per-type probabilities: the ideal
/// symmetric data center where network transformations shine.
struct uniform_fixture {
    fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};

    uniform_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            switch (registry.kind(id)) {
                case component_kind::external:
                    break;
                case component_kind::host:
                    registry.set_probability(id, 0.01);
                    break;
                default:
                    registry.set_probability(id, 0.008);
            }
        }
    }

    deployment_plan plan(std::vector<node_id> hosts) const {
        deployment_plan p;
        p.hosts = std::move(hosts);
        return p;
    }
};

TEST(Symmetry, SingleHostPlansAreEquivalentAnywhere) {
    uniform_fixture f;
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    const auto a = f.plan({f.ft.host(0, 0, 0)});
    const auto b = f.plan({f.ft.host(3, 2, 1)});
    EXPECT_TRUE(checker.equivalent(a, b));
}

TEST(Symmetry, CoLocationPatternsDistinguishPlans) {
    uniform_fixture f;
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    const auto same_rack = f.plan({f.ft.host(0, 0, 0), f.ft.host(0, 0, 1)});
    const auto same_pod = f.plan({f.ft.host(0, 0, 0), f.ft.host(0, 1, 0)});
    const auto cross_pod = f.plan({f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)});
    EXPECT_FALSE(checker.equivalent(same_rack, same_pod));
    EXPECT_FALSE(checker.equivalent(same_pod, cross_pod));
    EXPECT_FALSE(checker.equivalent(same_rack, cross_pod));
}

TEST(Symmetry, PermutedPlansWithSamePatternAreEquivalent) {
    uniform_fixture f;
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    // Two cross-pod pairs in different pods: same structural pattern.
    const auto a = f.plan({f.ft.host(0, 0, 0), f.ft.host(1, 1, 2)});
    const auto b = f.plan({f.ft.host(2, 3, 1), f.ft.host(5, 0, 3)});
    EXPECT_TRUE(checker.equivalent(a, b));
    // Same-rack pairs under different racks: equivalent too.
    const auto c = f.plan({f.ft.host(0, 0, 0), f.ft.host(0, 0, 1)});
    const auto d = f.plan({f.ft.host(4, 2, 2), f.ft.host(4, 2, 3)});
    EXPECT_TRUE(checker.equivalent(c, d));
}

TEST(Symmetry, InstanceOrderDoesNotMatter) {
    uniform_fixture f;
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    const auto a = f.plan({f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)});
    const auto b = f.plan({f.ft.host(1, 0, 0), f.ft.host(0, 0, 0)});
    EXPECT_EQ(checker.signature(a), checker.signature(b));
}

TEST(Symmetry, ProbabilityClassBreaksEquivalence) {
    // §3.3.1: same-type components with very different probabilities are
    // logically different types.
    uniform_fixture f;
    const node_id special = f.ft.host(3, 2, 1);
    f.registry.set_probability(special, 0.2);
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    const auto a = f.plan({f.ft.host(0, 0, 0)});
    const auto b = f.plan({special});
    EXPECT_FALSE(checker.equivalent(a, b));
}

TEST(Symmetry, RackProbabilityMatters) {
    uniform_fixture f;
    f.registry.set_probability(f.ft.edge(2, 0), 0.1);  // one flaky ToR
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    const auto under_flaky = f.plan({f.ft.host(2, 0, 0)});
    const auto under_normal = f.plan({f.ft.host(2, 1, 0)});
    EXPECT_FALSE(checker.equivalent(under_flaky, under_normal));
}

TEST(Symmetry, SharedSupplyPatternMatters) {
    uniform_fixture f;
    fault_tree_forest forest{f.ft.graph().node_count()};
    const power_assignment pa = attach_power_supplies(
        f.ft.topology(), f.registry, forest, {.supply_count = 5});
    // Uniform supply probabilities keep the per-instance features equal, so
    // only the *sharing pattern* can distinguish plans.
    for (const component_id s : pa.supplies) {
        f.registry.set_probability(s, 0.01);
    }
    const symmetry_checker checker{f.ft.topology(), f.registry, &forest};

    // Find two cross-pod host pairs: one whose chains (host group + rack
    // supplies) share at least one supply, and one sharing none at all.
    const auto chain_supplies = [&](node_id host) {
        std::vector<component_id> deps = pa.supplies_of_node[host];
        const auto& rack_deps =
            pa.supplies_of_node[rack_of(f.ft.graph(), host)];
        deps.insert(deps.end(), rack_deps.begin(), rack_deps.end());
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        return deps;
    };
    const auto chains_share = [&](node_id a, node_id b) {
        const auto da = chain_supplies(a);
        const auto db = chain_supplies(b);
        std::vector<component_id> common;
        std::set_intersection(da.begin(), da.end(), db.begin(), db.end(),
                              std::back_inserter(common));
        return !common.empty();
    };
    const node_id base = f.ft.host(0, 0, 0);
    node_id sharing = invalid_node;
    node_id distinct = invalid_node;
    for (int pod = 1; pod < f.ft.pod_count(); ++pod) {
        for (int e = 0; e < f.ft.group_width(); ++e) {
            const node_id candidate = f.ft.host(pod, e, 0);
            if (chains_share(base, candidate)) {
                sharing = sharing == invalid_node ? candidate : sharing;
            } else {
                distinct = distinct == invalid_node ? candidate : distinct;
            }
        }
    }
    ASSERT_NE(sharing, invalid_node);
    ASSERT_NE(distinct, invalid_node);
    const auto shared_plan = f.plan({base, sharing});
    const auto diverse_plan = f.plan({base, distinct});
    EXPECT_FALSE(checker.equivalent(shared_plan, diverse_plan));
}

TEST(Symmetry, SignatureIsDeterministic) {
    uniform_fixture f;
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    const auto p = f.plan({f.ft.host(0, 0, 0), f.ft.host(2, 1, 1)});
    EXPECT_EQ(checker.signature(p), checker.signature(p));
}

TEST(Symmetry, NeighborReplacementUsuallyEquivalentInUniformFabric) {
    // The practical effect the paper exploits: in a perfectly uniform
    // fat-tree, swapping one host for another in a structurally identical
    // position yields an equivalent plan the search can skip.
    uniform_fixture f;
    const symmetry_checker checker{f.ft.topology(), f.registry, nullptr};
    const auto current = f.plan({f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)});
    const auto swapped = f.plan({f.ft.host(0, 0, 0), f.ft.host(2, 0, 0)});
    EXPECT_TRUE(checker.equivalent(current, swapped));
}

}  // namespace
}  // namespace recloud
