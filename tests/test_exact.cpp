#include "assess/exact.hpp"

#include <gtest/gtest.h>

#include "routing/bfs_reachability.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

/// Minimal chain topology: external - border - spine... built as a 1-spine,
/// 1-leaf, 1-host leaf-spine so reliability is hand-computable.
struct tiny_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 1, .leaves = 1, .hosts_per_leaf = 1, .border_leaves = 1});
    component_registry registry{topo.graph};
    bfs_reachability oracle{topo};

    node_id host() const { return topo.hosts[0]; }
    node_id leaf() const {
        return topo.graph.nodes_of_kind(node_kind::edge_switch)[0];
    }
    node_id spine() const {
        return topo.graph.nodes_of_kind(node_kind::core_switch)[0];
    }
    node_id border() const { return topo.border_switches[0]; }
};

TEST(Exact, SerialChainMultipliesSurvival) {
    // external - border - spine - leaf - host: reachability requires all
    // four fallible components alive -> R = prod(1 - p_i).
    tiny_fixture f;
    f.registry.set_probability(f.host(), 0.1);
    f.registry.set_probability(f.leaf(), 0.2);
    f.registry.set_probability(f.spine(), 0.3);
    f.registry.set_probability(f.border(), 0.4);

    const application app = application::k_of_n(1, 1);
    deployment_plan plan;
    plan.hosts = {f.host()};
    const double r = exact_reliability(f.registry, nullptr, f.oracle, app, plan);
    EXPECT_NEAR(r, 0.9 * 0.8 * 0.7 * 0.6, 1e-12);
}

TEST(Exact, ZeroProbabilitiesGiveCertainty) {
    tiny_fixture f;
    const application app = application::k_of_n(1, 1);
    deployment_plan plan;
    plan.hosts = {f.host()};
    EXPECT_DOUBLE_EQ(
        exact_reliability(f.registry, nullptr, f.oracle, app, plan), 1.0);
}

TEST(Exact, ParallelRedundancyOneOfTwo) {
    // Two hosts on the same fully-reliable fabric, only hosts can fail:
    // R(1-of-2) = 1 - p1*p2.
    built_topology topo = build_leaf_spine(
        {.spines = 1, .leaves = 1, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    registry.set_probability(topo.hosts[0], 0.25);
    registry.set_probability(topo.hosts[1], 0.5);
    bfs_reachability oracle{topo};
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[1]};
    EXPECT_NEAR(exact_reliability(registry, nullptr, oracle, app, plan),
                1.0 - 0.25 * 0.5, 1e-12);
}

TEST(Exact, TwoOfTwoRequiresBoth) {
    built_topology topo = build_leaf_spine(
        {.spines = 1, .leaves = 1, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    registry.set_probability(topo.hosts[0], 0.25);
    registry.set_probability(topo.hosts[1], 0.5);
    bfs_reachability oracle{topo};
    const application app = application::k_of_n(2, 2);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[1]};
    EXPECT_NEAR(exact_reliability(registry, nullptr, oracle, app, plan),
                0.75 * 0.5, 1e-12);
}

TEST(Exact, SharedDependencyCorrelatesFailures) {
    // Two hosts share one power supply (p = 0.1); only the supply can fail.
    // Without correlation, 1-of-2 would be 1 - 0.1^2 = 0.99; with the shared
    // supply it is exactly 0.9.
    built_topology topo = build_leaf_spine(
        {.spines = 1, .leaves = 1, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    const component_id supply =
        registry.add(component_kind::power_supply, "shared", 0.1);
    forest.attach(topo.hosts[0], forest.add_leaf(supply));
    forest.attach(topo.hosts[1], forest.add_leaf(supply));
    bfs_reachability oracle{topo};
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[1]};
    EXPECT_NEAR(exact_reliability(registry, &forest, oracle, app, plan), 0.9,
                1e-12);
}

TEST(Exact, IndependentSuppliesBeatSharedOne) {
    // Same setup but with two independent supplies: 1 - 0.1^2.
    built_topology topo = build_leaf_spine(
        {.spines = 1, .leaves = 1, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    const component_id s0 =
        registry.add(component_kind::power_supply, "s0", 0.1);
    const component_id s1 =
        registry.add(component_kind::power_supply, "s1", 0.1);
    forest.attach(topo.hosts[0], forest.add_leaf(s0));
    forest.attach(topo.hosts[1], forest.add_leaf(s1));
    bfs_reachability oracle{topo};
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[1]};
    EXPECT_NEAR(exact_reliability(registry, &forest, oracle, app, plan),
                1.0 - 0.01, 1e-12);
}

TEST(Exact, TooManyComponentsRejected) {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 8, .border_leaves = 1});
    component_registry registry{topo.graph};
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) != component_kind::external) {
            registry.set_probability(id, 0.01);
        }
    }
    bfs_reachability oracle{topo};
    const application app = application::k_of_n(1, 1);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0]};
    EXPECT_THROW(
        (void)exact_reliability(registry, nullptr, oracle, app, plan),
        std::invalid_argument);
}

}  // namespace
}  // namespace recloud
