// The assessment engine over REAL transport: recloud_worker processes on
// Unix-domain sockets. The §6 contract must survive the process boundary —
// assessment_stats bit-identical to the serial route-and-check for any
// worker count — under the full chaos matrix (crash/stall/corrupt/
// truncate), external SIGKILLs of worker processes, and exhausted respawn
// budgets. Plus wire-protocol round-trips and the no-zombie guarantee.
//
// RECLOUD_WORKER_BIN is injected by CMake as the absolute path of the
// freshly built worker executable.
#include "exec/transport.hpp"
#include "exec/worker_protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <thread>
#include <tuple>
#include <utility>

#include <signal.h>
#include <sys/wait.h>

#include "assess/assessor.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

constexpr std::size_t k_rounds = 2000;
constexpr std::uint64_t k_seed = 404;

socket_transport_options worker_bin_options() {
    socket_transport_options options;
    options.worker_binary = RECLOUD_WORKER_BIN;
    return options;
}

/// Same shape as the loopback recovery fixture (tests/test_engine_recovery),
/// with the structural environment the socket transport ships.
struct socket_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    application app = application::k_of_n(2, 3);
    deployment_plan plan;

    socket_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, 0.03);
            }
        }
        plan.hosts = {topo.hosts[0], topo.hosts[5], topo.hosts[10]};
    }

    oracle_factory factory() {
        return [this] { return std::make_unique<bfs_reachability>(topo); };
    }

    engine_options socket_options(std::size_t workers) {
        engine_options options;
        options.workers = workers;
        options.batch_rounds = 100;
        options.transport = transport_kind::socket;
        options.socket = worker_bin_options();
        options.topology = &topo;
        return options;
    }

    assessment_stats serial_reference() {
        extended_dagger_sampler sampler{registry.probabilities(), k_seed};
        round_state rs{registry.size(), &forest};
        bfs_reachability oracle{topo};
        return assess_deployment(sampler, rs, oracle, app, plan, k_rounds);
    }

    assessment_stats run_engine(const engine_options& options,
                                engine_stats* stats_out = nullptr,
                                assessment_engine** engine_out = nullptr) {
        extended_dagger_sampler sampler{registry.probabilities(), k_seed};
        assessment_engine engine{registry.size(), &forest, factory(), options};
        if (engine_out != nullptr) {
            *engine_out = &engine;
        }
        const assessment_stats stats =
            engine.assess(sampler, app, plan, k_rounds);
        if (stats_out != nullptr) {
            *stats_out = engine.stats();
        }
        return stats;
    }
};

void expect_identical(const assessment_stats& got,
                      const assessment_stats& want) {
    EXPECT_EQ(got.rounds, want.rounds);
    EXPECT_EQ(got.reliable, want.reliable);
}

// ---- wire protocol --------------------------------------------------------

TEST(WorkerProtocol, EnvelopeRoundTrip) {
    const std::vector<std::byte> blob = {std::byte{1}, std::byte{2},
                                         std::byte{0xff}};
    const std::vector<std::byte> framed =
        pack_envelope(worker_msg::result, 42, 7, blob);
    const envelope msg = unpack_envelope(framed);
    EXPECT_EQ(msg.kind, worker_msg::result);
    EXPECT_EQ(msg.batch, 42u);
    EXPECT_EQ(msg.attempt, 7u);
    EXPECT_EQ(msg.blob, blob);
}

TEST(WorkerProtocol, EnvelopeRejectsUnknownKind) {
    std::vector<std::byte> framed = pack_envelope(worker_msg::hello, 0, 0, {});
    // The kind byte sits right after the frame header; 0 is not a message.
    framed[frame_header_bytes] = std::byte{0};
    // Fix the checksum? No — a mangled payload already fails the checksum,
    // which is the outer integrity layer doing its job.
    EXPECT_THROW((void)unpack_envelope(framed), serialize_error);
}

TEST(WorkerProtocol, EnvironmentRoundTripsBitExactly) {
    socket_fixture f;
    // A forest with every gate kind, plus link components, so the codec's
    // whole surface is exercised.
    const tree_node_id l0 = f.forest.add_leaf(3);
    const tree_node_id l1 = f.forest.add_leaf(4);
    const tree_node_id l2 = f.forest.add_leaf(5);
    const tree_node_id a = f.forest.add_and({l0, l1});
    const tree_node_id k = f.forest.add_k_of_n(2, {l0, l1, l2});
    const tree_node_id o = f.forest.add_or({a, k});
    f.forest.attach(0, o);
    f.forest.attach(7, l2);

    link_attachment links;
    links.component_of_edge.assign(f.topo.graph.edge_count(), invalid_node);
    links.component_of_edge[0] = 11;

    const chaos_schedule chaos{{.seed = 99,
                                .crash_rate = 0.125,
                                .stall_rate = 0.0625,
                                .corrupt_rate = 0.25,
                                .truncate_rate = 0.03125,
                                .stall_duration = std::chrono::milliseconds{7}}};

    transport_env env;
    env.component_count = f.registry.size();
    env.forest = &f.forest;
    env.topology = &f.topo;
    env.links = &links;
    env.chaos = &chaos;
    env.verdict_cache.enabled = true;
    env.verdict_cache.max_entries = 4096;
    env.verdict_cache.cross_plan = true;

    const std::vector<std::byte> blob = encode_worker_environment(env, 5);
    const worker_environment decoded = decode_worker_environment(blob);
    EXPECT_EQ(decoded.worker_id, 5u);
    EXPECT_EQ(decoded.component_count, f.registry.size());
    EXPECT_EQ(decoded.topology.graph.node_count(), f.topo.graph.node_count());
    EXPECT_EQ(decoded.topology.graph.edge_count(), f.topo.graph.edge_count());
    EXPECT_EQ(decoded.topology.hosts, f.topo.hosts);
    EXPECT_EQ(decoded.topology.external, f.topo.external);
    ASSERT_TRUE(decoded.forest.has_value());
    EXPECT_EQ(decoded.forest->tree_node_count(), f.forest.tree_node_count());
    ASSERT_TRUE(decoded.links.has_value());
    EXPECT_EQ(decoded.links->component_of_edge, links.component_of_edge);
    EXPECT_TRUE(decoded.chaos_enabled);
    EXPECT_EQ(decoded.chaos.seed, 99u);
    EXPECT_TRUE(decoded.cache_enabled);
    EXPECT_EQ(decoded.cache_max_entries, 4096u);
    EXPECT_TRUE(decoded.cache_cross_plan);

    // Re-encoding the decoded environment reproduces the exact bytes: the
    // rebuild is an identity, including every tree node id.
    const chaos_schedule chaos2{decoded.chaos};
    transport_env env2;
    env2.component_count = decoded.component_count;
    env2.forest = &*decoded.forest;
    env2.topology = &decoded.topology;
    env2.links = &*decoded.links;
    env2.chaos = &chaos2;
    env2.verdict_cache.enabled = true;
    env2.verdict_cache.max_entries = decoded.cache_max_entries;
    env2.verdict_cache.cross_plan = decoded.cache_cross_plan;
    EXPECT_EQ(encode_worker_environment(env2, 5), blob);
}

TEST(WorkerProtocol, EnvironmentRequiresTopology) {
    transport_env env;
    env.component_count = 3;
    EXPECT_THROW((void)encode_worker_environment(env, 0), transport_error);
}

// ---- socket transport: determinism ---------------------------------------

TEST(SocketTransport, FaultFreeBitIdenticalToSerial) {
    socket_fixture f;
    const assessment_stats want = f.serial_reference();
    engine_stats stats;
    expect_identical(f.run_engine(f.socket_options(4), &stats), want);
    EXPECT_EQ(stats.worker_respawns, 0u);
    EXPECT_EQ(stats.failures(), 0u);
}

TEST(SocketTransport, OneWorkerMatchesFour) {
    socket_fixture f;
    expect_identical(f.run_engine(f.socket_options(1)),
                     f.run_engine(f.socket_options(4)));
}

TEST(SocketTransport, BadWorkerBinaryThrows) {
    socket_fixture f;
    engine_options options = f.socket_options(1);
    options.socket.worker_binary = "/nonexistent/recloud_worker";
    options.socket.spawn_timeout = std::chrono::milliseconds{2000};
    EXPECT_THROW(
        assessment_engine(f.registry.size(), &f.forest, f.factory(), options),
        transport_error);
}

TEST(SocketTransport, MissingTopologyThrows) {
    socket_fixture f;
    engine_options options = f.socket_options(1);
    options.topology = nullptr;
    EXPECT_THROW(
        assessment_engine(f.registry.size(), &f.forest, f.factory(), options),
        transport_error);
}

// ---- socket transport: chaos matrix --------------------------------------

TEST(SocketTransport, CrashChaosKillsRealProcessesAndRecovers) {
    socket_fixture f;
    const chaos_schedule chaos{{.seed = 11, .crash_rate = 0.12}};
    engine_options options = f.socket_options(4);
    options.max_attempts = 6;
    options.chaos = &chaos;
    options.socket.max_respawns = 64;
    engine_stats stats;
    expect_identical(f.run_engine(options, &stats), f.serial_reference());
    // A chaos crash over sockets is a real _exit: the transport must have
    // respawned processes and the engine must have charged crashes.
    EXPECT_GT(stats.worker_respawns, 0u);
    EXPECT_GT(stats.worker_crashes, 0u);
}

TEST(SocketTransport, StallChaosTripsDeadlineAndRedispatches) {
    socket_fixture f;
    const chaos_schedule chaos{{.seed = 12, .stall_rate = 0.2}};
    engine_options options = f.socket_options(4);
    options.max_attempts = 6;
    options.batch_deadline = std::chrono::milliseconds{10};
    options.chaos = &chaos;
    engine_stats stats;
    expect_identical(f.run_engine(options, &stats), f.serial_reference());
    EXPECT_GT(stats.deadline_misses, 0u);
}

TEST(SocketTransport, CorruptChaosSurfacesAsInvalidFrames) {
    socket_fixture f;
    const chaos_schedule chaos{{.seed = 13, .corrupt_rate = 0.25}};
    engine_options options = f.socket_options(4);
    options.max_attempts = 6;
    options.chaos = &chaos;
    engine_stats stats;
    expect_identical(f.run_engine(options, &stats), f.serial_reference());
    // The mangled INNER frame rides a valid outer envelope: the stream never
    // desyncs and the engine sees its historic invalid-frame path.
    EXPECT_GT(stats.invalid_frames, 0u);
    EXPECT_EQ(stats.worker_respawns, 0u);
}

TEST(SocketTransport, TruncateChaosSurfacesAsInvalidFrames) {
    socket_fixture f;
    const chaos_schedule chaos{{.seed = 14, .truncate_rate = 0.25}};
    engine_options options = f.socket_options(4);
    options.max_attempts = 6;
    options.chaos = &chaos;
    engine_stats stats;
    expect_identical(f.run_engine(options, &stats), f.serial_reference());
    EXPECT_GT(stats.invalid_frames, 0u);
}

TEST(SocketTransport, FullChaosMatrixStaysBitIdentical) {
    socket_fixture f;
    const chaos_schedule chaos{{.seed = 15,
                                .crash_rate = 0.06,
                                .stall_rate = 0.06,
                                .corrupt_rate = 0.06,
                                .truncate_rate = 0.06}};
    engine_options options = f.socket_options(4);
    options.max_attempts = 8;
    options.batch_deadline = std::chrono::milliseconds{10};
    options.chaos = &chaos;
    options.socket.max_respawns = 64;
    engine_stats stats;
    expect_identical(f.run_engine(options, &stats), f.serial_reference());
    EXPECT_GT(stats.failures(), 0u);
}

TEST(SocketTransport, RespawnBudgetExhaustedDegradesGracefully) {
    socket_fixture f;
    // Every attempt crashes its worker and respawning is forbidden: the
    // whole fleet dies for good and the master must degrade every batch.
    const chaos_schedule chaos{{.seed = 16, .crash_rate = 1.0}};
    engine_options options = f.socket_options(2);
    options.max_attempts = 4;
    options.chaos = &chaos;
    options.socket.max_respawns = 0;
    engine_stats stats;
    assessment_engine* engine = nullptr;
    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine e{f.registry.size(), &f.forest, f.factory(), options};
    engine = &e;
    const assessment_stats got = e.assess(sampler, f.app, f.plan, k_rounds);
    stats = e.stats();
    expect_identical(got, f.serial_reference());
    EXPECT_GT(stats.degraded, 0u);
    EXPECT_EQ(engine->transport().live_worker_processes(), 0u);
}

TEST(SocketTransport, VerdictCacheOverSocketsStaysBitIdentical) {
    socket_fixture f;
    // Socket workers derive their own support set from the shipped
    // environment; verdicts must be unchanged.
    engine_options options = f.socket_options(4);
    options.verdict_cache.enabled = true;
    options.verdict_cache.max_entries = 1 << 12;
    expect_identical(f.run_engine(options), f.serial_reference());
}

// ---- socket transport: real SIGKILL ---------------------------------------

TEST(SocketTransport, SigkilledWorkerIsRespawnedBitIdentical) {
    socket_fixture f;
    engine_options options = f.socket_options(4);
    options.max_attempts = 6;
    options.socket.max_respawns = 16;
    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             options};
    // Kill worker 0's PROCESS before the assessment: its first batch fails
    // at the transport layer and the slot respawns.
    const std::vector<int> pids = engine.transport().worker_pids();
    ASSERT_EQ(pids.size(), 4u);
    ASSERT_GT(pids[0], 0);
    ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
    const assessment_stats got =
        engine.assess(sampler, f.app, f.plan, k_rounds);
    expect_identical(got, f.serial_reference());
    EXPECT_GE(engine.stats().worker_respawns, 1u);
    // The respawned fleet becomes whole again. The respawn runs in the
    // slot's I/O thread while assess() can complete via re-dispatch to the
    // survivors, so poll rather than assert the instant after assess().
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (engine.transport().live_worker_processes() < 4 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(engine.transport().live_worker_processes(), 4u);
}

TEST(SocketTransport, SigkillStormKeepsBitIdentity) {
    socket_fixture f;
    engine_options options = f.socket_options(3);
    options.max_attempts = 8;
    options.socket.max_respawns = 1000;
    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             options};
    std::atomic<bool> done{false};
    std::thread killer{[&] {
        std::size_t next = 0;
        while (!done.load(std::memory_order_acquire)) {
            const std::vector<int> pids = engine.transport().worker_pids();
            if (!pids.empty()) {
                const int pid = pids[next++ % pids.size()];
                if (pid > 0) {
                    (void)::kill(pid, SIGKILL);
                }
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }};
    const assessment_stats got =
        engine.assess(sampler, f.app, f.plan, k_rounds);
    done.store(true, std::memory_order_release);
    killer.join();
    // Timing decides WHICH batches die with their worker, never the counts.
    expect_identical(got, f.serial_reference());
}

// ---- socket transport: lifecycle ------------------------------------------

TEST(SocketTransport, NoZombieWorkersAfterDestruction) {
    socket_fixture f;
    {
        engine_options options = f.socket_options(3);
        engine_stats stats;
        expect_identical(f.run_engine(options, &stats), f.serial_reference());
    }
    // Every worker process was terminated AND reaped: no children remain,
    // zombie or otherwise.
    errno = 0;
    const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
    EXPECT_EQ(r, -1);
    EXPECT_EQ(errno, ECHILD);
}

TEST(SocketTransport, DestructionIsIdempotentUnderRepeatedUse) {
    socket_fixture f;
    // Two assessments through one engine, then destruction: teardown/setup
    // sequencing and the final shutdown must all be clean.
    engine_options options = f.socket_options(2);
    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             options};
    const assessment_stats first =
        engine.assess(sampler, f.app, f.plan, k_rounds);
    sampler.reset(k_seed);
    const assessment_stats second =
        engine.assess(sampler, f.app, f.plan, k_rounds);
    expect_identical(first, second);
}

// ---- acceptance: medium fat-tree, 8 workers -------------------------------

TEST(SocketTransport, MediumFatTreeEightWorkersBitIdenticalToSerial) {
    const fat_tree tree = fat_tree::build(data_center_scale::medium);
    const built_topology& topo = tree.topology();
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) != component_kind::external) {
            registry.set_probability(id, 0.002);
        }
    }
    application app = application::k_of_n(2, 4);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[700], topo.hosts[1500],
                  topo.hosts[3000]};
    constexpr std::size_t rounds = 1500;
    constexpr std::uint64_t seed = 777;

    assessment_stats serial;
    {
        extended_dagger_sampler sampler{registry.probabilities(), seed};
        round_state rs{registry.size(), &forest};
        bfs_reachability oracle{topo};
        serial = assess_deployment(sampler, rs, oracle, app, plan, rounds);
    }

    const auto run = [&](std::size_t workers) {
        engine_options options;
        options.workers = workers;
        options.batch_rounds = 128;
        options.transport = transport_kind::socket;
        options.socket = worker_bin_options();
        options.topology = &topo;
        extended_dagger_sampler sampler{registry.probabilities(), seed};
        assessment_engine engine{
            registry.size(), &forest,
            [&topo] { return std::make_unique<bfs_reachability>(topo); },
            options};
        return engine.assess(sampler, app, plan, rounds);
    };

    const assessment_stats solo = run(1);
    const assessment_stats fleet = run(8);
    expect_identical(solo, serial);
    expect_identical(fleet, serial);
}

// ---- telemetry harvest (DESIGN §12) ---------------------------------------

/// Restores the process-wide obs surfaces a harvest test mutates. Worker
/// obs enablement ships in the environment blob at transport construction,
/// so tests flip the registry BEFORE building the engine.
struct obs_state_guard {
    ~obs_state_guard() {
        obs::metrics_registry::global().set_enabled(false);
        obs::metrics_registry::global().reset();
        obs::tracer::global().stop();
        obs::tracer::global().reset();
    }
};

TEST(TelemetryHarvest, HarvestedWorkerCountersMatchLoopbackFleet) {
    // The §11->§12 equivalence claim: the counters a loopback fleet writes
    // into the shared registry directly must equal what a socket fleet's
    // harvest pulls back across the process boundary — same seed, same
    // batch assignment, same per-worker contexts.
    socket_fixture f;
    obs_state_guard guard;
    auto& registry = obs::metrics_registry::global();
    registry.reset();
    registry.set_enabled(true);

    engine_options loopback;
    loopback.workers = 2;
    loopback.batch_rounds = 100;
    f.run_engine(loopback);
    const obs::telemetry_snapshot after_loopback = registry.snapshot();
    // assess.rounds is counted once at the engine layer (master side);
    // route.floods / route.flood_reuse happen inside the worker contexts —
    // in-process for loopback, across the pid boundary for sockets.
    EXPECT_EQ(after_loopback.value("assess.rounds"), k_rounds);
    const std::uint64_t loop_floods = after_loopback.value("route.floods");
    const std::uint64_t loop_reuse = after_loopback.value("route.flood_reuse");
    EXPECT_GT(loop_floods, 0u);
    registry.reset();

    // Socket fleet: worker-side counters accrue inside the worker
    // processes; nothing reaches this registry until the harvest folds the
    // deltas in.
    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             f.socket_options(2)};
    const assessment_stats stats = engine.assess(sampler, f.app, f.plan,
                                                 k_rounds);
    EXPECT_EQ(stats.rounds, k_rounds);
    EXPECT_EQ(registry.snapshot().value("route.floods"), 0u);
    engine.harvest_telemetry();
    const obs::telemetry_snapshot harvested = registry.snapshot();
    EXPECT_EQ(harvested.value("assess.rounds"), k_rounds);
    EXPECT_EQ(harvested.value("route.floods"), loop_floods);
    EXPECT_EQ(harvested.value("route.flood_reuse"), loop_reuse);
}

TEST(TelemetryHarvest, RepeatedHarvestDoesNotDoubleCount) {
    // Workers ship registry DELTAS (snapshot-then-reset); pulling twice in
    // a row must leave the merged totals unchanged.
    socket_fixture f;
    obs_state_guard guard;
    auto& registry = obs::metrics_registry::global();
    registry.reset();
    registry.set_enabled(true);

    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             f.socket_options(2)};
    (void)engine.assess(sampler, f.app, f.plan, k_rounds);
    engine.harvest_telemetry();
    const std::uint64_t floods = registry.snapshot().value("route.floods");
    EXPECT_GT(floods, 0u);
    engine.harvest_telemetry();
    EXPECT_EQ(registry.snapshot().value("route.floods"), floods);

    const worker_fleet_telemetry fleet = engine.fleet_telemetry();
    ASSERT_EQ(fleet.workers.size(), 2u);
    for (const auto& w : fleet.workers) {
        EXPECT_GE(w.harvests, 2u);
    }
}

TEST(TelemetryHarvest, FleetTelemetryReportsEveryWorkerSortedByIdWithPid) {
    socket_fixture f;
    obs_state_guard guard;
    obs::metrics_registry::global().reset();
    obs::metrics_registry::global().set_enabled(true);

    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             f.socket_options(8)};
    (void)engine.assess(sampler, f.app, f.plan, k_rounds);
    engine.harvest_telemetry();

    const std::vector<int> pids = engine.transport().worker_pids();
    const worker_fleet_telemetry fleet = engine.fleet_telemetry();
    ASSERT_EQ(fleet.workers.size(), 8u);
    for (std::size_t w = 0; w < fleet.workers.size(); ++w) {
        const auto& entry = fleet.workers[w];
        EXPECT_EQ(entry.worker_id, w);  // sorted, one entry per slot
        EXPECT_NE(entry.pid, 0u);
        EXPECT_NE(std::find(pids.begin(), pids.end(),
                            static_cast<int>(entry.pid)),
                  pids.end());
        EXPECT_GE(entry.harvests, 1u);
        // No tracing in this test, so worker rings cannot have overflowed;
        // the field itself is the satellite contract (per-worker drops).
        EXPECT_EQ(entry.trace_dropped, 0u);
    }
}

TEST(TelemetryHarvest, ShutdownHarvestFoldsCountersWithoutExplicitCall) {
    // Destroying the engine (fleet shutdown) runs a final harvest when obs
    // was on at spawn — counters survive without anyone calling
    // harvest_telemetry().
    socket_fixture f;
    obs_state_guard guard;
    auto& registry = obs::metrics_registry::global();
    registry.reset();
    registry.set_enabled(true);

    {
        extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
        assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                                 f.socket_options(2)};
        (void)engine.assess(sampler, f.app, f.plan, k_rounds);
        EXPECT_EQ(registry.snapshot().value("route.floods"), 0u);
    }
    EXPECT_GT(registry.snapshot().value("route.floods"), 0u);
}

TEST(TelemetryHarvest, CacheCountersOverSocketsMatchLoopbackPrivateCaches) {
    // Socket workers derive their verdict-cache support from the shipped
    // environment; with the master building the identical support for its
    // loopback threads, the harvested cumulative cache counters must match
    // the in-process fleet bit-for-bit at every worker count.
    socket_fixture f;
    const verdict_support support{f.topo, f.registry.size(), &f.forest,
                                  nullptr};
    const auto run = [&](bool over_sockets, std::size_t workers) {
        engine_options options;
        if (over_sockets) {
            options = f.socket_options(workers);
        } else {
            options.workers = workers;
            options.batch_rounds = 100;
            options.verdict_cache.support = &support;
        }
        options.verdict_cache.enabled = true;
        options.verdict_cache.max_entries = 1 << 12;
        extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
        assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                                 options};
        const assessment_stats stats =
            engine.assess(sampler, f.app, f.plan, k_rounds);
        engine.harvest_telemetry();
        const verdict_cache_stats* cache = engine.cache_stats();
        EXPECT_NE(cache, nullptr);
        verdict_cache_stats fleet_sum{};
        for (const auto& w : engine.fleet_telemetry().workers) {
            fleet_sum.accumulate(w.cache);
        }
        return std::tuple{stats, cache != nullptr ? *cache
                                                  : verdict_cache_stats{},
                          fleet_sum, over_sockets};
    };
    for (const std::size_t workers : {1u, 2u, 8u}) {
        const auto [sock_stats, sock_cache, sock_fleet, dummy1] =
            run(true, workers);
        const auto [loop_stats, loop_cache, loop_fleet, dummy2] =
            run(false, workers);
        expect_identical(sock_stats, loop_stats);
        EXPECT_EQ(sock_cache.rounds, loop_cache.rounds);
        EXPECT_EQ(sock_cache.empty_hits, loop_cache.empty_hits);
        EXPECT_EQ(sock_cache.hits, loop_cache.hits);
        EXPECT_EQ(sock_cache.misses, loop_cache.misses);
        EXPECT_EQ(sock_cache.insertions, loop_cache.insertions);
        EXPECT_EQ(sock_cache.evictions, loop_cache.evictions);
        EXPECT_EQ(sock_cache.rebinds, loop_cache.rebinds);
        // The harvested per-worker provenance sums back to the engine's
        // combined totals (no degraded-local contribution here).
        EXPECT_EQ(sock_fleet.rounds, sock_cache.rounds);
        EXPECT_EQ(sock_fleet.hits, sock_cache.hits);
        EXPECT_EQ(sock_fleet.misses, sock_cache.misses);
    }
}

TEST(TelemetryHarvest, HarvestBetweenAssessmentsIsPureObservability) {
    // §6: interleaving a harvest (and full obs) between assessments must
    // not move a single bit of either assessment's result.
    socket_fixture f;
    const auto run = [&](bool obs_on) {
        obs_state_guard guard;
        obs::metrics_registry::global().reset();
        obs::metrics_registry::global().set_enabled(obs_on);
        if (obs_on) {
            obs::tracer::global().start();
        }
        extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
        assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                                 f.socket_options(2)};
        const assessment_stats first =
            engine.assess(sampler, f.app, f.plan, k_rounds);
        if (obs_on) {
            engine.harvest_telemetry();
        }
        const assessment_stats second =
            engine.assess(sampler, f.app, f.plan, k_rounds);
        return std::pair{first, second};
    };
    const auto [on_first, on_second] = run(true);
    const auto [off_first, off_second] = run(false);
    expect_identical(on_first, off_first);
    expect_identical(on_second, off_second);
}

}  // namespace
}  // namespace recloud
