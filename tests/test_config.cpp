#include "util/config.hpp"

#include <gtest/gtest.h>

namespace recloud {
namespace {

TEST(Config, ParsesKeysAndSections) {
    const config c = config::parse(
        "top = 1\n"
        "[datacenter]\n"
        "topology = fat-tree\n"
        "scale=large\n"
        "[search]\n"
        "  max_seconds =  30 \n");
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(c.get_string("top", ""), "1");
    EXPECT_EQ(c.get_string("datacenter.topology", ""), "fat-tree");
    EXPECT_EQ(c.get_string("datacenter.scale", ""), "large");
    EXPECT_EQ(c.get_int("search.max_seconds", 0), 30);
}

TEST(Config, CommentsAndBlankLines) {
    const config c = config::parse(
        "# full line comment\n"
        "\n"
        "a = 1   # trailing comment\n"
        "b = 2   ; ini-style comment\n"
        ";another\n");
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.get_int("a", 0), 1);
    EXPECT_EQ(c.get_int("b", 0), 2);
}

TEST(Config, TypedAccessors) {
    const config c = config::parse(
        "i = -42\n"
        "d = 2.5\n"
        "t1 = true\nt2 = YES\nt3 = on\nt4 = 1\n"
        "f1 = false\nf2 = No\nf3 = off\nf4 = 0\n");
    EXPECT_EQ(c.get_int("i", 0), -42);
    EXPECT_DOUBLE_EQ(c.get_double("d", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(c.get_double("i", 0.0), -42.0);
    for (const char* key : {"t1", "t2", "t3", "t4"}) {
        EXPECT_TRUE(c.get_bool(key, false)) << key;
    }
    for (const char* key : {"f1", "f2", "f3", "f4"}) {
        EXPECT_FALSE(c.get_bool(key, true)) << key;
    }
}

TEST(Config, FallbacksForMissingKeys) {
    const config c = config::parse("present = 7\n");
    EXPECT_EQ(c.get_int("absent", 99), 99);
    EXPECT_EQ(c.get_string("absent", "dflt"), "dflt");
    EXPECT_TRUE(c.get_bool("absent", true));
    EXPECT_DOUBLE_EQ(c.get_double("absent", 1.5), 1.5);
}

TEST(Config, RequireVariantsThrowOnMissing) {
    const config c = config::parse("x = 3\n");
    EXPECT_EQ(c.require_int("x"), 3);
    EXPECT_EQ(c.require_string("x"), "3");
    EXPECT_THROW((void)c.require_int("y"), config_error);
    EXPECT_THROW((void)c.require_string("y"), config_error);
}

TEST(Config, MalformedInputRejectedWithLineNumbers) {
    EXPECT_THROW((void)config::parse("no equals sign\n"), config_error);
    EXPECT_THROW((void)config::parse("[unterminated\n"), config_error);
    EXPECT_THROW((void)config::parse("[]\n"), config_error);
    EXPECT_THROW((void)config::parse(" = value\n"), config_error);
    try {
        (void)config::parse("ok = 1\nbroken line\n");
        FAIL() << "expected config_error";
    } catch (const config_error& e) {
        EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
    }
}

TEST(Config, TypeErrorsAreReported) {
    const config c = config::parse("i = 12x\nb = maybe\nd = 1.2.3\n");
    EXPECT_THROW((void)c.get_int("i", 0), config_error);
    EXPECT_THROW((void)c.get_bool("b", false), config_error);
    EXPECT_THROW((void)c.get_double("d", 0.0), config_error);
}

TEST(Config, LastAssignmentWins) {
    const config c = config::parse("k = 1\nk = 2\n");
    EXPECT_EQ(c.get_int("k", 0), 2);
    EXPECT_EQ(c.size(), 1u);
}

TEST(Config, KeysAreSorted) {
    const config c = config::parse("b = 1\na = 2\n[s]\nc = 3\n");
    EXPECT_EQ(c.keys(), (std::vector<std::string>{"a", "b", "s.c"}));
}

TEST(Config, MissingFileThrows) {
    EXPECT_THROW((void)config::parse_file("/nonexistent/recloud.conf"),
                 config_error);
}

TEST(Config, EmptyInputIsEmptyConfig) {
    const config c = config::parse("");
    EXPECT_EQ(c.size(), 0u);
    EXPECT_FALSE(c.has("anything"));
}

}  // namespace
}  // namespace recloud
