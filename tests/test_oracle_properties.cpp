// Cross-topology oracle invariants, swept over every builder in the
// library: with no failures everything is border-reachable and mutually
// reachable; under random failures host_to_host is symmetric; failed hosts
// are never reachable; border-reachable hosts can reach each other when
// connectivity is transitive (BFS oracle).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "faults/round_state.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/monte_carlo.hpp"
#include "topology/bcube.hpp"
#include "topology/dcell.hpp"
#include "topology/fat_tree.hpp"
#include "topology/jellyfish.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/vl2.hpp"
#include "util/rng.hpp"

namespace recloud {
namespace {

struct topology_case {
    std::string label;
    std::function<built_topology()> build;
};

std::vector<topology_case> all_topologies() {
    return {
        {"fat_tree",
         [] {
             // Copy out of the temporary fat_tree wrapper.
             return built_topology{fat_tree::build(4).topology()};
         }},
        {"leaf_spine",
         [] {
             return build_leaf_spine({.spines = 2, .leaves = 4,
                                      .hosts_per_leaf = 3,
                                      .border_leaves = 1});
         }},
        {"vl2",
         [] {
             return build_vl2({.intermediates = 3, .aggregations = 4,
                               .tors = 6, .hosts_per_tor = 3,
                               .border_intermediates = 1});
         }},
        {"jellyfish",
         [] {
             return build_jellyfish({.switches = 12, .degree = 4,
                                     .hosts_per_switch = 2,
                                     .border_switches = 2, .seed = 3});
         }},
        {"bcube", [] { return build_bcube({.ports = 3, .levels = 1}); }},
        {"dcell", [] { return build_dcell({.servers_per_cell = 4}); }},
    };
}

class OracleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OracleProperty, HealthyStateFullyConnected) {
    const topology_case tc = all_topologies()[GetParam()];
    const built_topology topo = tc.build();
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    rs.begin_round(std::vector<component_id>{});
    oracle.begin_round(rs);
    for (const node_id h : topo.hosts) {
        ASSERT_TRUE(oracle.border_reachable(h)) << tc.label << " host " << h;
    }
    ASSERT_TRUE(oracle.host_to_host(topo.hosts.front(), topo.hosts.back()));
}

TEST_P(OracleProperty, HostToHostIsSymmetricUnderRandomFailures) {
    const topology_case tc = all_topologies()[GetParam()];
    const built_topology topo = tc.build();
    std::vector<double> probs(topo.graph.node_count(), 0.15);
    probs[topo.external] = 0.0;
    monte_carlo_sampler sampler{probs, 11 + GetParam()};
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    rng pick{7};
    std::vector<component_id> failed;
    for (int round = 0; round < 80; ++round) {
        sampler.next_round(failed);
        rs.begin_round(failed);
        oracle.begin_round(rs);
        for (int probe = 0; probe < 6; ++probe) {
            const node_id a = topo.hosts[pick.uniform_below(topo.hosts.size())];
            const node_id b = topo.hosts[pick.uniform_below(topo.hosts.size())];
            ASSERT_EQ(oracle.host_to_host(a, b), oracle.host_to_host(b, a))
                << tc.label;
        }
    }
}

TEST_P(OracleProperty, FailedHostsAreNeverReachable) {
    const topology_case tc = all_topologies()[GetParam()];
    const built_topology topo = tc.build();
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    const node_id victim = topo.hosts[0];
    rs.begin_round(std::vector<component_id>{victim});
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(victim)) << tc.label;
    for (const node_id other : topo.hosts) {
        if (other != victim) {
            ASSERT_FALSE(oracle.host_to_host(victim, other)) << tc.label;
        }
    }
}

TEST_P(OracleProperty, ConnectivityIsTransitiveThroughBorderSide) {
    // For the BFS oracle (plain connectivity), two hosts that both reach
    // the border side can reach each other: the external node links their
    // floods into one component.
    const topology_case tc = all_topologies()[GetParam()];
    const built_topology topo = tc.build();
    std::vector<double> probs(topo.graph.node_count(), 0.2);
    probs[topo.external] = 0.0;
    monte_carlo_sampler sampler{probs, 31 + GetParam()};
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    rng pick{13};
    std::vector<component_id> failed;
    for (int round = 0; round < 60; ++round) {
        sampler.next_round(failed);
        rs.begin_round(failed);
        oracle.begin_round(rs);
        const node_id a = topo.hosts[pick.uniform_below(topo.hosts.size())];
        const node_id b = topo.hosts[pick.uniform_below(topo.hosts.size())];
        if (oracle.border_reachable(a) && oracle.border_reachable(b)) {
            ASSERT_TRUE(oracle.host_to_host(a, b)) << tc.label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, OracleProperty,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const auto& info) {
                             return all_topologies()[info.param].label;
                         });

}  // namespace
}  // namespace recloud
