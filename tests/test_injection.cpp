// Fault-injection samplers and blast-radius (criticality) analysis.
#include <gtest/gtest.h>

#include <vector>

#include "assess/criticality.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/injection.hpp"
#include "sampling/monte_carlo.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/power.hpp"

namespace recloud {
namespace {

TEST(ScriptedSampler, ReplaysAndWraps) {
    scripted_sampler sampler{{{1, 2}, {}, {5}}};
    EXPECT_EQ(sampler.script_length(), 3u);
    std::vector<component_id> failed;
    sampler.next_round(failed);
    EXPECT_EQ(failed, (std::vector<component_id>{1, 2}));
    sampler.next_round(failed);
    EXPECT_TRUE(failed.empty());
    sampler.next_round(failed);
    EXPECT_EQ(failed, (std::vector<component_id>{5}));
    sampler.next_round(failed);  // wraps
    EXPECT_EQ(failed, (std::vector<component_id>{1, 2}));
}

TEST(ScriptedSampler, ResetRestartsScript) {
    scripted_sampler sampler{{{7}, {8}}};
    std::vector<component_id> failed;
    sampler.next_round(failed);
    sampler.reset(999);  // seed irrelevant
    sampler.next_round(failed);
    EXPECT_EQ(failed, (std::vector<component_id>{7}));
}

TEST(ScriptedSampler, EmptyScriptRejected) {
    EXPECT_THROW(scripted_sampler{{}}, std::invalid_argument);
}

TEST(ForcedFailure, AddsForcedComponentsWithoutDuplicates) {
    scripted_sampler inner{{{1, 2}, {3}}};
    forced_failure_sampler forced{inner, {2, 9, 9}};
    std::vector<component_id> failed;
    forced.next_round(failed);
    std::sort(failed.begin(), failed.end());
    EXPECT_EQ(failed, (std::vector<component_id>{1, 2, 9}));  // 2 not doubled
    forced.next_round(failed);
    std::sort(failed.begin(), failed.end());
    EXPECT_EQ(failed, (std::vector<component_id>{2, 3, 9}));
}

TEST(ForcedFailure, ResetPropagatesToInner) {
    scripted_sampler inner{{{1}, {2}}};
    forced_failure_sampler forced{inner, {}};
    std::vector<component_id> failed;
    forced.next_round(failed);
    forced.reset(0);
    forced.next_round(failed);
    EXPECT_EQ(failed, (std::vector<component_id>{1}));
}

// ---- criticality ------------------------------------------------------------

struct crit_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    power_assignment power = attach_power_supplies(topo, registry, forest,
                                                   {.supply_count = 3});
    bfs_reachability oracle{topo};
    application app = application::k_of_n(2, 3);
    deployment_plan plan;

    crit_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, 0.02);
            }
        }
        plan.hosts = {topo.hosts[0], topo.hosts[2], topo.hosts[4]};
    }
};

TEST(Criticality, DeployedHostOutweighsUnusedHost) {
    crit_fixture f;
    monte_carlo_sampler sampler{f.registry.probabilities(), 5};
    const node_id used = f.plan.hosts[0];
    const node_id unused = f.topo.hosts[7];
    const criticality_report report = analyze_criticality(
        sampler, &f.forest, f.registry.size(), f.oracle, f.app, f.plan,
        {used, unused}, {.rounds = 8000, .seed = 3});
    ASSERT_EQ(report.entries.size(), 2u);
    EXPECT_EQ(report.entries[0].component, used);
    EXPECT_GT(report.entries[0].impact, report.entries[1].impact);
    // An unused host has (near) zero impact.
    EXPECT_LT(report.entries[1].impact, 0.01);
}

TEST(Criticality, SharedSupplyIsCritical) {
    crit_fixture f;
    monte_carlo_sampler sampler{f.registry.probabilities(), 7};
    // Candidates: all three power supplies.
    const criticality_report report = analyze_criticality(
        sampler, &f.forest, f.registry.size(), f.oracle, f.app, f.plan,
        f.power.supplies, {.rounds = 8000, .seed = 11});
    ASSERT_EQ(report.entries.size(), 3u);
    // K=2-of-3: a supply feeding >= 2 of the plan's host chains is fatal
    // when down; the top-ranked supply must have a large impact.
    EXPECT_GT(report.entries.front().impact, 0.2);
    // Conditional reliability given the top supply down is far below base.
    EXPECT_LT(report.entries.front().conditional_reliability,
              report.baseline.reliability);
}

TEST(Criticality, BorderSwitchIsSinglePointOfFailure) {
    crit_fixture f;  // one border leaf only
    monte_carlo_sampler sampler{f.registry.probabilities(), 9};
    const criticality_report report = analyze_criticality(
        sampler, &f.forest, f.registry.size(), f.oracle, f.app, f.plan,
        {f.topo.border_switches[0]}, {.rounds = 4000, .seed = 13});
    ASSERT_EQ(report.entries.size(), 1u);
    // With the only border switch down nothing is border-reachable.
    EXPECT_EQ(report.entries[0].conditional_reliability, 0.0);
    EXPECT_NEAR(report.entries[0].impact, report.baseline.reliability, 1e-12);
}

TEST(Criticality, EntriesSortedByImpact) {
    crit_fixture f;
    monte_carlo_sampler sampler{f.registry.probabilities(), 15};
    std::vector<component_id> candidates;
    for (int i = 0; i < 6; ++i) {
        candidates.push_back(f.topo.hosts[i]);
    }
    const criticality_report report = analyze_criticality(
        sampler, &f.forest, f.registry.size(), f.oracle, f.app, f.plan,
        candidates, {.rounds = 3000, .seed = 17});
    for (std::size_t i = 1; i < report.entries.size(); ++i) {
        EXPECT_GE(report.entries[i - 1].impact, report.entries[i].impact);
    }
}

}  // namespace
}  // namespace recloud
