// Multi-chain annealing determinism contract: K independent chains with
// forked RNG substreams produce a bit-identical best plan for ANY thread
// count (search layer: anneal_chains; facade: re_cloud with search_chains),
// chain 0 reproduces the single-chain trajectory exactly (prefix
// stability), and the reduction is deterministic (argmax score, ties to
// the lowest chain).
#include "search/annealing.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "topology/fat_tree.hpp"

namespace recloud {
namespace {

// ---- search layer --------------------------------------------------------

plan_evaluation flat_eval(std::size_t reliable) {
    plan_evaluation eval;
    eval.stats = make_assessment_stats(reliable, 100);
    eval.score = eval.stats.reliability;
    return eval;
}

annealing_options iteration_options(std::size_t iterations) {
    annealing_options options;
    options.max_time = std::chrono::seconds{30};
    options.max_iterations = iterations;
    options.schedule = schedule_mode::iterations;
    options.use_symmetry = false;
    options.seed = 21;
    return options;
}

void expect_same_result(const annealing_result& a, const annealing_result& b) {
    EXPECT_EQ(a.best_plan.hosts, b.best_plan.hosts);
    EXPECT_EQ(a.best_evaluation.score, b.best_evaluation.score);
    EXPECT_EQ(a.best_evaluation.stats.reliable, b.best_evaluation.stats.reliable);
    EXPECT_EQ(a.best_evaluation.stats.rounds, b.best_evaluation.stats.rounds);
    EXPECT_EQ(a.fulfilled, b.fulfilled);
    EXPECT_EQ(a.plans_generated, b.plans_generated);
    EXPECT_EQ(a.plans_evaluated, b.plans_evaluated);
    EXPECT_EQ(a.symmetric_skips, b.symmetric_skips);
    EXPECT_EQ(a.accepted_worse, b.accepted_worse);
}

TEST(MultiChain, IterationsScheduleRequiresFiniteBudget) {
    const fat_tree ft = fat_tree::build(4);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 1};
    annealing_options options;
    options.schedule = schedule_mode::iterations;  // max_iterations unset
    const plan_evaluator eval = [](const deployment_plan&) {
        return flat_eval(50);
    };
    EXPECT_THROW((void)anneal(gen, eval, nullptr, 2, options),
                 std::invalid_argument);
}

TEST(MultiChain, ChainsValidateSpecs) {
    const annealing_options options = iteration_options(10);
    EXPECT_THROW((void)anneal_chains({}, nullptr, 2, options),
                 std::invalid_argument);

    const fat_tree ft = fat_tree::build(4);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 1};
    const plan_evaluator eval = [](const deployment_plan&) {
        return flat_eval(50);
    };
    EXPECT_THROW((void)anneal_chains({chain_spec{nullptr, &eval, 1}}, nullptr,
                                     2, options),
                 std::invalid_argument);
    EXPECT_THROW((void)anneal_chains({chain_spec{&gen, nullptr, 1}}, nullptr,
                                     2, options),
                 std::invalid_argument);
}

TEST(MultiChain, TiesGoToTheLowestChain) {
    const fat_tree ft = fat_tree::build(4);
    std::vector<neighbor_generator> gens{
        {ft.topology(), anti_affinity::none, 1},
        {ft.topology(), anti_affinity::none, 2},
        {ft.topology(), anti_affinity::none, 3}};
    // Chain scores 0.5, 0.9, 0.9: the winner must be chain 1, never the
    // equally-scored chain 2 (lowest index wins ties) — for any thread
    // count and regardless of completion order.
    const std::vector<plan_evaluator> evals{
        [](const deployment_plan&) { return flat_eval(50); },
        [](const deployment_plan&) { return flat_eval(90); },
        [](const deployment_plan&) { return flat_eval(90); }};
    const std::vector<chain_spec> specs{
        {&gens[0], &evals[0], 11}, {&gens[1], &evals[1], 12},
        {&gens[2], &evals[2], 13}};
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const multi_chain_result result =
            anneal_chains(specs, nullptr, 2, iteration_options(10), threads);
        EXPECT_EQ(result.winning_chain, 1u) << "threads=" << threads;
        ASSERT_EQ(result.chains.size(), 3u);
        EXPECT_EQ(result.chains[2].best_evaluation.score,
                  result.chains[1].best_evaluation.score);
    }
}

TEST(MultiChain, ChainExceptionsPropagate) {
    const fat_tree ft = fat_tree::build(4);
    std::vector<neighbor_generator> gens{
        {ft.topology(), anti_affinity::none, 1},
        {ft.topology(), anti_affinity::none, 2}};
    const std::vector<plan_evaluator> evals{
        [](const deployment_plan&) { return flat_eval(50); },
        [](const deployment_plan&) -> plan_evaluation {
            throw std::runtime_error{"backend lost"};
        }};
    const std::vector<chain_spec> specs{{&gens[0], &evals[0], 11},
                                        {&gens[1], &evals[1], 12}};
    for (const std::size_t threads : {1u, 2u}) {
        EXPECT_THROW((void)anneal_chains(specs, nullptr, 2,
                                         iteration_options(10), threads),
                     std::runtime_error)
            << "threads=" << threads;
    }
}

TEST(MultiChain, ChainZeroMatchesSingleChainAnneal) {
    // Prefix stability at the search layer: spec[0] run inside a K=3
    // anneal_chains is bit-identical to a plain anneal() with the same seed,
    // and stays bit-identical as K grows.
    const fat_tree ft = fat_tree::build(4);
    const annealing_options options = iteration_options(40);

    // Distinct generator objects with the SAME seed: chains may run
    // concurrently, but identical seeds make them interchangeable replicas.
    const auto make_gen = [&](std::uint64_t seed) {
        return neighbor_generator{ft.topology(), anti_affinity::none, seed};
    };
    // Score depends only on the plan — any shared evaluator state would
    // break chain independence, so compute from the plan alone.
    const plan_evaluator eval = [](const deployment_plan& plan) {
        std::size_t sum = 0;
        for (const node_id host : plan.hosts) {
            sum += host;
        }
        return flat_eval(sum % 101);
    };

    neighbor_generator solo = make_gen(7);
    annealing_options solo_options = options;
    solo_options.seed = 31;
    const annealing_result single = anneal(solo, eval, nullptr, 3, solo_options);

    std::vector<neighbor_generator> gens{make_gen(7), make_gen(8), make_gen(9)};
    const std::vector<chain_spec> specs{{&gens[0], &eval, 31},
                                        {&gens[1], &eval, 32},
                                        {&gens[2], &eval, 33}};
    for (const std::size_t threads : {1u, 2u, 8u}) {
        std::vector<neighbor_generator> fresh{make_gen(7), make_gen(8),
                                              make_gen(9)};
        const std::vector<chain_spec> run_specs{{&fresh[0], &eval, 31},
                                                {&fresh[1], &eval, 32},
                                                {&fresh[2], &eval, 33}};
        const multi_chain_result result =
            anneal_chains(run_specs, nullptr, 3, options, threads);
        ASSERT_EQ(result.chains.size(), 3u);
        expect_same_result(result.chains[0], single);
    }
}

// ---- facade layer --------------------------------------------------------

struct facade_fixture {
    scenario_ptr snapshot = make_fat_tree_scenario(4);

    [[nodiscard]] deployment_response run(assessment_backend_kind backend,
                                          std::size_t chains,
                                          std::size_t threads) const {
        recloud_options options;
        options.assessment_rounds = 200;
        options.max_iterations = 25;
        options.deterministic_schedule = true;
        options.backend = backend;
        options.assessment_threads = 2;
        options.search_chains = chains;
        options.search_threads = threads;
        options.seed = 17;
        re_cloud system{snapshot, options};
        deployment_request request;
        request.app = application::k_of_n(2, 3);
        request.desired_reliability = 1.0;  // unreachable: full budget runs
        request.max_search_time = std::chrono::seconds{30};
        return system.find_deployment(request);
    }
};

void expect_same_response(const deployment_response& a,
                          const deployment_response& b) {
    EXPECT_EQ(a.plan.hosts, b.plan.hosts);
    EXPECT_EQ(a.stats.reliable, b.stats.reliable);
    EXPECT_EQ(a.stats.rounds, b.stats.rounds);
    EXPECT_EQ(a.stats.reliability, b.stats.reliability);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.fulfilled, b.fulfilled);
    EXPECT_EQ(a.winning_chain, b.winning_chain);
    expect_same_result(a.search, b.search);
}

TEST(MultiChain, BitIdenticalAcrossThreadCounts) {
    // The headline contract: for every backend and every chain count, the
    // response is bit-identical whether the chains run on 1, 2 or 8
    // threads. Threads only affect wall-clock.
    const facade_fixture f;
    for (const assessment_backend_kind backend :
         {assessment_backend_kind::serial, assessment_backend_kind::parallel,
          assessment_backend_kind::engine}) {
        for (const std::size_t chains : {1u, 2u, 4u}) {
            const deployment_response baseline = f.run(backend, chains, 1);
            EXPECT_LT(baseline.winning_chain, chains);
            EXPECT_EQ(baseline.plan.hosts.size(), 3u);
            for (const std::size_t threads : {2u, 8u}) {
                const deployment_response other = f.run(backend, chains, threads);
                SCOPED_TRACE(::testing::Message()
                             << "backend=" << static_cast<int>(backend)
                             << " chains=" << chains << " threads=" << threads);
                expect_same_response(other, baseline);
            }
        }
    }
}

TEST(MultiChain, GrowingChainCountNeverLosesScore) {
    // Chain 0 is the K=1 trajectory verbatim; chains 1..K-1 only ADD
    // trajectories, and the CRN evaluator makes inter-chain comparison
    // noise-free — so the winning search score is monotone in K.
    const facade_fixture f;
    const deployment_response k1 = f.run(assessment_backend_kind::serial, 1, 1);
    const deployment_response k2 = f.run(assessment_backend_kind::serial, 2, 2);
    const deployment_response k4 = f.run(assessment_backend_kind::serial, 4, 2);
    EXPECT_GE(k2.search.best_evaluation.score, k1.search.best_evaluation.score);
    EXPECT_GE(k4.search.best_evaluation.score, k2.search.best_evaluation.score);
    // And if chain 0 wins at K=2, it IS the K=1 result (prefix stability
    // observable through the facade).
    if (k2.winning_chain == 0) {
        EXPECT_EQ(k2.plan.hosts, k1.plan.hosts);
    }
}

TEST(MultiChain, RepeatedSearchesOnOneInstanceAreReproducible) {
    // Chain stacks persist across searches; CRN resets every candidate's
    // stream, so a second identical search must reproduce the first.
    const facade_fixture f;
    recloud_options options;
    options.assessment_rounds = 200;
    options.max_iterations = 25;
    options.deterministic_schedule = true;
    options.search_chains = 3;
    options.search_threads = 2;
    options.seed = 17;
    re_cloud system{f.snapshot, options};
    deployment_request request;
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{30};
    const deployment_response first = system.find_deployment(request);
    const deployment_response second = system.find_deployment(request);
    expect_same_response(second, first);
}

TEST(MultiChain, DeterministicScheduleRequiresFiniteIterationsAtFacade) {
    const facade_fixture f;
    recloud_options options;
    options.deterministic_schedule = true;  // max_iterations left infinite
    EXPECT_THROW(re_cloud(f.snapshot, options), std::invalid_argument);
}

TEST(MultiChain, ObserverEventsCarryTheChainIndex) {
    const facade_fixture f;
    std::vector<std::uint32_t> seen;
    std::mutex seen_mutex;
    recloud_options options;
    options.assessment_rounds = 100;
    options.max_iterations = 10;
    options.deterministic_schedule = true;
    options.search_chains = 3;
    options.search_threads = 2;
    options.seed = 5;
    options.observer = [&](const obs::search_iteration_event& event) {
        const std::lock_guard<std::mutex> lock{seen_mutex};
        seen.push_back(event.chain);
    };
    re_cloud system{f.snapshot, options};
    deployment_request request;
    request.app = application::k_of_n(1, 2);
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{30};
    (void)system.find_deployment(request);
    std::vector<bool> chain_seen(3, false);
    for (const std::uint32_t chain : seen) {
        ASSERT_LT(chain, 3u);
        chain_seen[chain] = true;
    }
    EXPECT_TRUE(chain_seen[0]);
    EXPECT_TRUE(chain_seen[1]);
    EXPECT_TRUE(chain_seen[2]);
}

}  // namespace
}  // namespace recloud
