#include "faults/cvss.hpp"

#include <gtest/gtest.h>

namespace recloud {
namespace {

TEST(Cvss, NoImpactScoresZero) {
    cvss_metrics m;  // all impacts none
    EXPECT_DOUBLE_EQ(cvss_base_score(m), 0.0);
}

TEST(Cvss, Critical10) {
    // AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H — canonical 10.0 vector.
    cvss_metrics m;
    m.scope = cvss_scope::changed;
    m.confidentiality = cvss_impact::high;
    m.integrity = cvss_impact::high;
    m.availability = cvss_impact::high;
    EXPECT_DOUBLE_EQ(cvss_base_score(m), 10.0);
}

TEST(Cvss, KnownVectorHeartbleedLike) {
    // AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N scores 7.5 (e.g. CVE-2014-0160).
    cvss_metrics m;
    m.confidentiality = cvss_impact::high;
    EXPECT_DOUBLE_EQ(cvss_base_score(m), 7.5);
}

TEST(Cvss, KnownVectorLocalHighComplexity) {
    // AV:L/AC:H/PR:L/UI:R/S:U/C:L/I:L/A:L scores 4.2.
    cvss_metrics m;
    m.attack_vector = cvss_attack_vector::local;
    m.attack_complexity = cvss_attack_complexity::high;
    m.privileges_required = cvss_privileges_required::low;
    m.user_interaction = cvss_user_interaction::required;
    m.confidentiality = cvss_impact::low;
    m.integrity = cvss_impact::low;
    m.availability = cvss_impact::low;
    EXPECT_DOUBLE_EQ(cvss_base_score(m), 4.2);
}

TEST(Cvss, KnownVectorFullUnchangedImpact) {
    // AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H scores 9.8 (classic RCE).
    cvss_metrics m;
    m.confidentiality = cvss_impact::high;
    m.integrity = cvss_impact::high;
    m.availability = cvss_impact::high;
    EXPECT_DOUBLE_EQ(cvss_base_score(m), 9.8);
}

TEST(Cvss, ChangedScopeRaisesPrivilegedScores) {
    cvss_metrics unchanged;
    unchanged.privileges_required = cvss_privileges_required::high;
    unchanged.availability = cvss_impact::high;
    cvss_metrics changed = unchanged;
    changed.scope = cvss_scope::changed;
    EXPECT_GT(cvss_base_score(changed), cvss_base_score(unchanged));
}

TEST(Cvss, PhysicalVectorScoresLowest) {
    cvss_metrics network;
    network.availability = cvss_impact::high;
    cvss_metrics physical = network;
    physical.attack_vector = cvss_attack_vector::physical;
    EXPECT_LT(cvss_base_score(physical), cvss_base_score(network));
}

TEST(Cvss, ScoreIsWithinRange) {
    // Sweep every enum combination; scores must stay in [0, 10].
    for (int av = 0; av < 4; ++av) {
        for (int ac = 0; ac < 2; ++ac) {
            for (int pr = 0; pr < 3; ++pr) {
                for (int ui = 0; ui < 2; ++ui) {
                    for (int sc = 0; sc < 2; ++sc) {
                        for (int c = 0; c < 3; ++c) {
                            for (int i = 0; i < 3; ++i) {
                                for (int a = 0; a < 3; ++a) {
                                    cvss_metrics m;
                                    m.attack_vector = static_cast<cvss_attack_vector>(av);
                                    m.attack_complexity =
                                        static_cast<cvss_attack_complexity>(ac);
                                    m.privileges_required =
                                        static_cast<cvss_privileges_required>(pr);
                                    m.user_interaction =
                                        static_cast<cvss_user_interaction>(ui);
                                    m.scope = static_cast<cvss_scope>(sc);
                                    m.confidentiality = static_cast<cvss_impact>(c);
                                    m.integrity = static_cast<cvss_impact>(i);
                                    m.availability = static_cast<cvss_impact>(a);
                                    const double score = cvss_base_score(m);
                                    ASSERT_GE(score, 0.0);
                                    ASSERT_LE(score, 10.0);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

TEST(CvssProbability, MonotoneInScore) {
    double previous = -1.0;
    for (double score = 0.0; score <= 10.0; score += 0.5) {
        const double p = probability_from_cvss(score);
        EXPECT_GT(p, previous);
        previous = p;
    }
}

TEST(CvssProbability, RangeEndpoints) {
    EXPECT_DOUBLE_EQ(probability_from_cvss(0.0), 1e-4);
    EXPECT_DOUBLE_EQ(probability_from_cvss(10.0), 0.05);
    EXPECT_DOUBLE_EQ(probability_from_cvss(-5.0), 1e-4);   // clamped
    EXPECT_DOUBLE_EQ(probability_from_cvss(50.0), 0.05);   // clamped
}

}  // namespace
}  // namespace recloud
