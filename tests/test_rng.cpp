#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace recloud {
namespace {

TEST(Rng, SameSeedSameStream) {
    rng a{123};
    rng b{123};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    rng a{1};
    rng b{2};
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
    rng r{0};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i) {
        seen.insert(r());
    }
    EXPECT_GT(seen.size(), 95u);  // not stuck on a fixed point
}

TEST(Rng, UniformInUnitInterval) {
    rng r{7};
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    rng r{11};
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        sum += r.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
    rng r{13};
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformBelowStaysBelow) {
    rng r{17};
    for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
        for (int i = 0; i < 1000; ++i) {
            ASSERT_LT(r.uniform_below(n), n);
        }
    }
}

TEST(Rng, UniformBelowCoversAllValues) {
    rng r{19};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(r.uniform_below(8));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformBelowIsUnbiased) {
    rng r{23};
    std::vector<int> counts(5, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        ++counts[r.uniform_below(5)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
    }
}

TEST(Rng, NormalMomentsMatch) {
    rng r{29};
    const int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double variance = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(variance, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
    rng r{31};
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += r.normal(0.01, 0.001);
    }
    EXPECT_NEAR(sum / n, 0.01, 0.0001);
}

TEST(Rng, ForkDecorrelatesStreams) {
    rng parent{37};
    rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent() == child()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitmixIsDeterministic) {
    std::uint64_t s1 = 42;
    std::uint64_t s2 = 42;
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
    EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace recloud
