// Concurrent deployment service (service/deployment_service.hpp):
// admission control on a bounded queue, request isolation over shared
// scenario snapshots, per-request telemetry tagging, and drain-on-shutdown.
#include "service/deployment_service.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "obs/timeline.hpp"

namespace recloud {
namespace {

recloud_options small_search_defaults() {
    recloud_options defaults;
    defaults.assessment_rounds = 200;
    defaults.max_iterations = 20;
    defaults.deterministic_schedule = true;
    return defaults;
}

service_request request_for(std::string scenario, std::uint64_t seed) {
    service_request request;
    request.scenario = std::move(scenario);
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 1.0;  // unreachable: full budget runs
    request.max_search_time = std::chrono::seconds{30};
    request.seed = seed;
    return request;
}

TEST(Service, CompletesARequest) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    auto future = service.submit(request_for("dc", 3));
    const service_response response = future.get();
    EXPECT_EQ(response.status, request_status::completed);
    EXPECT_EQ(response.request_id, 1u);
    EXPECT_EQ(response.scenario, "dc");
    EXPECT_EQ(response.result.plan.hosts.size(), 3u);
    EXPECT_GT(response.result.stats.rounds, 0u);

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(Service, UnknownScenarioFailsTheRequest) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    const service_response response =
        service.submit(request_for("nowhere", 1)).get();
    EXPECT_EQ(response.status, request_status::failed);
    EXPECT_FALSE(response.error.empty());
    EXPECT_EQ(service.stats().failed, 1u);
}

TEST(Service, ZeroCapacityQueueRejectsDeterministically) {
    // queue_capacity = 0 makes EVERY submission overflow — the admission
    // path is exercised without racing the workers.
    service_options options;
    options.workers = 1;
    options.queue_capacity = 0;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    for (int i = 0; i < 3; ++i) {
        const service_response response =
            service.submit(request_for("dc", 1)).get();
        EXPECT_EQ(response.status, request_status::rejected);
        EXPECT_FALSE(response.error.empty());
    }
    const service_stats stats = service.stats();
    EXPECT_EQ(stats.rejected, 3u);
    EXPECT_EQ(stats.submitted, 0u);
    EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(Service, SubmitAfterShutdownIsRejected) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));
    service.shutdown();
    service.shutdown();  // idempotent
    const service_response response =
        service.submit(request_for("dc", 1)).get();
    EXPECT_EQ(response.status, request_status::rejected);
}

TEST(Service, ScenarioReplacementDoesNotAffectAdmittedRequests) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    const scenario_ptr original = make_fat_tree_scenario(4);
    service.add_scenario("dc", original);
    auto future = service.submit(request_for("dc", 3));
    // Replace the name immediately; the admitted request captured the
    // original snapshot at submission.
    service.add_scenario("dc", make_fat_tree_scenario(6));
    const service_response response = future.get();
    EXPECT_EQ(response.status, request_status::completed);
    // A k=4 fat tree has 16 hosts; k=6 host ids extend far beyond. The plan
    // must come from the ORIGINAL snapshot's host range.
    for (const node_id host : response.result.plan.hosts) {
        bool in_original = false;
        for (const node_id h : original->topology().hosts) {
            if (h == host) {
                in_original = true;
                break;
            }
        }
        EXPECT_TRUE(in_original);
    }
    EXPECT_GT(service.find_scenario("dc")->topology().hosts.size(),
              original->topology().hosts.size());
}

TEST(Service, ConcurrentRequestsMatchSoloRuns) {
    // The isolation contract: 8 requests racing on 2 workers against ONE
    // shared snapshot produce exactly what 8 solo re_cloud runs produce.
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    const recloud_options defaults = small_search_defaults();

    std::vector<deployment_response> solo;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        recloud_options options = defaults;
        options.seed = seed;
        re_cloud system{snapshot, options};
        deployment_request request;
        request.app = application::k_of_n(2, 3);
        request.desired_reliability = 1.0;
        request.max_search_time = std::chrono::seconds{30};
        solo.push_back(system.find_deployment(request));
    }

    service_options options;
    options.workers = 2;
    options.defaults = defaults;
    deployment_service service{options};
    service.add_scenario("dc", snapshot);
    std::vector<std::future<service_response>> futures;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        futures.push_back(service.submit(request_for("dc", seed)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const service_response response = futures[i].get();
        ASSERT_EQ(response.status, request_status::completed) << response.error;
        EXPECT_EQ(response.result.plan.hosts, solo[i].plan.hosts);
        EXPECT_EQ(response.result.stats.reliable, solo[i].stats.reliable);
        EXPECT_EQ(response.result.stats.rounds, solo[i].stats.rounds);
        EXPECT_EQ(response.result.score, solo[i].score);
        EXPECT_EQ(response.result.winning_chain, solo[i].winning_chain);
    }
    const service_stats stats = service.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_GE(stats.peak_queue_depth, 1u);
}

TEST(Service, PerRequestOverridesApply) {
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", snapshot);

    service_request multi = request_for("dc", 9);
    multi.search_chains = 3;
    multi.max_iterations = 12;
    const service_response response = service.submit(std::move(multi)).get();
    ASSERT_EQ(response.status, request_status::completed);
    EXPECT_LT(response.result.winning_chain, 3u);
    // 12-iteration budget, not the 20 of the defaults.
    EXPECT_LE(response.result.search.plans_generated, 12u);

    // The same request through a solo re_cloud with the override applied.
    recloud_options solo_options = options.defaults;
    solo_options.seed = 9;
    solo_options.search_chains = 3;
    solo_options.max_iterations = 12;
    re_cloud solo{snapshot, solo_options};
    deployment_request request;
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{30};
    const deployment_response expected = solo.find_deployment(request);
    EXPECT_EQ(response.result.plan.hosts, expected.plan.hosts);
    EXPECT_EQ(response.result.winning_chain, expected.winning_chain);
}

TEST(Service, ObserverEventsAreTaggedWithRequestIds) {
    std::mutex seen_mutex;
    std::set<std::uint64_t> seen_requests;
    service_options options;
    options.workers = 2;
    options.defaults = small_search_defaults();
    options.defaults.observer = [&](const obs::search_iteration_event& event) {
        const std::lock_guard<std::mutex> lock{seen_mutex};
        seen_requests.insert(event.request_id);
    };
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));
    std::vector<std::future<service_response>> futures;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        futures.push_back(service.submit(request_for("dc", seed)));
    }
    std::set<std::uint64_t> expected_ids;
    for (auto& future : futures) {
        const service_response response = future.get();
        ASSERT_EQ(response.status, request_status::completed);
        expected_ids.insert(response.request_id);
    }
    const std::lock_guard<std::mutex> lock{seen_mutex};
    EXPECT_EQ(seen_requests, expected_ids);  // every id tagged, no id zero
    EXPECT_EQ(seen_requests.count(0), 0u);
}

TEST(Service, ShutdownDrainsAdmittedRequests) {
    // Everything admitted before shutdown still completes; the destructor
    // path is the same code.
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    std::vector<std::future<service_response>> futures;
    {
        deployment_service service{options};
        service.add_scenario("dc", make_fat_tree_scenario(4));
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            futures.push_back(service.submit(request_for("dc", seed)));
        }
        service.shutdown();
    }
    for (auto& future : futures) {
        const service_response response = future.get();
        EXPECT_EQ(response.status, request_status::completed);
    }
}

TEST(Service, StatusToString) {
    EXPECT_STREQ(to_string(request_status::completed), "completed");
    EXPECT_STREQ(to_string(request_status::rejected), "rejected");
    EXPECT_STREQ(to_string(request_status::failed), "failed");
}

// ---- sharding, quotas and load shedding ------------------------------------

/// Blocks the search of one request id at its first observer event until
/// release(); other requests' events pass straight through. Lets tests hold
/// a shard's single worker busy deterministically.
class request_gate {
public:
    explicit request_gate(std::uint64_t id) : id_(id) {}

    [[nodiscard]] obs::search_observer observer() {
        return [this](const obs::search_iteration_event& event) {
            if (event.request_id != id_) {
                return;
            }
            std::unique_lock<std::mutex> lock{mutex_};
            if (!started_) {
                started_ = true;
                cv_.notify_all();
            }
            cv_.wait(lock, [this] { return released_; });
        };
    }

    void await_started() {
        std::unique_lock<std::mutex> lock{mutex_};
        cv_.wait(lock, [this] { return started_; });
    }

    void release() {
        const std::lock_guard<std::mutex> lock{mutex_};
        released_ = true;
        cv_.notify_all();
    }

private:
    std::uint64_t id_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool started_ = false;
    bool released_ = false;
};

TEST(Service, ShardRoutingIsStableAndBounded) {
    service_options options;
    options.workers = 1;
    options.shards = 4;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    EXPECT_EQ(service.shard_count(), 4u);
    for (const char* name : {"alpha", "beta", "gamma"}) {
        const std::size_t shard = service.shard_of(name);
        EXPECT_LT(shard, 4u);
        EXPECT_EQ(shard, service.shard_of(name));  // stable
    }
}

TEST(Service, HotScenarioShedsOnItsOwnShardOnly) {
    request_gate gate{1};
    service_options options;
    options.workers = 1;
    options.queue_capacity = 1;
    options.shards = 4;
    options.defaults = small_search_defaults();
    options.defaults.observer = gate.observer();
    deployment_service service{options};

    // Two scenario names living on different shards.
    std::string hot = "s0";
    std::string cold;
    for (int i = 1; i < 64 && cold.empty(); ++i) {
        const std::string candidate = "s" + std::to_string(i);
        if (service.shard_of(candidate) != service.shard_of(hot)) {
            cold = candidate;
        }
    }
    ASSERT_FALSE(cold.empty());
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    service.add_scenario(hot, snapshot);
    service.add_scenario(cold, snapshot);

    // Wedge the hot shard: request 1 runs (gated inside its search), one
    // more fills the queue (capacity 1), the third must shed.
    auto wedged = service.submit(request_for(hot, 1));
    gate.await_started();
    auto queued = service.submit(request_for(hot, 2));
    const service_response shed = service.submit(request_for(hot, 3)).get();
    EXPECT_EQ(shed.status, request_status::rejected);
    EXPECT_EQ(shed.error, "queue is full");

    // The cold scenario's shard is unaffected while the hot one is wedged.
    const service_response cold_response =
        service.submit(request_for(cold, 4)).get();
    EXPECT_EQ(cold_response.status, request_status::completed);

    gate.release();
    EXPECT_EQ(wedged.get().status, request_status::completed);
    EXPECT_EQ(queued.get().status, request_status::completed);

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.submitted, 3u);
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.shed_queue_full, 1u);
    EXPECT_EQ(stats.shed_quota, 0u);
}

TEST(Service, TenantQuotaShedsExcessInFlightRequests) {
    request_gate gate{1};
    service_options options;
    options.workers = 1;
    options.tenant_quota = 1;
    options.defaults = small_search_defaults();
    options.defaults.observer = gate.observer();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    auto tag = [](service_request request, std::string tenant) {
        request.tenant = std::move(tenant);
        return request;
    };

    auto first = service.submit(tag(request_for("dc", 1), "acme"));
    gate.await_started();
    EXPECT_EQ(service.tenant_in_flight("acme"), 1u);

    // Same tenant, still in flight: shed by quota, not by queue.
    const service_response over_quota =
        service.submit(tag(request_for("dc", 2), "acme")).get();
    EXPECT_EQ(over_quota.status, request_status::rejected);
    EXPECT_EQ(over_quota.error, "tenant quota exceeded: acme");

    // A different tenant is admitted while "acme" is at its quota.
    auto other = service.submit(tag(request_for("dc", 3), "zeta"));

    gate.release();
    EXPECT_EQ(first.get().status, request_status::completed);
    EXPECT_EQ(other.get().status, request_status::completed);
    EXPECT_EQ(service.tenant_in_flight("acme"), 0u);
    EXPECT_EQ(service.tenant_in_flight("zeta"), 0u);

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.shed_quota, 1u);
    EXPECT_EQ(stats.shed_queue_full, 0u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.completed, 2u);
}

// ---- SLO deadlines: EDF admission, shedding, preemption --------------------

/// Records the order in which requests' searches START (first observer
/// event per id) while optionally gating one id like request_gate.
class start_order_gate {
public:
    explicit start_order_gate(std::uint64_t gated_id) : gated_id_(gated_id) {}

    [[nodiscard]] obs::search_observer observer() {
        return [this](const obs::search_iteration_event& event) {
            std::unique_lock<std::mutex> lock{mutex_};
            if (seen_.insert(event.request_id).second) {
                order_.push_back(event.request_id);
            }
            if (event.request_id != gated_id_) {
                return;
            }
            if (!started_) {
                started_ = true;
                cv_.notify_all();
            }
            cv_.wait(lock, [this] { return released_; });
        };
    }

    void await_started() {
        std::unique_lock<std::mutex> lock{mutex_};
        cv_.wait(lock, [this] { return started_; });
    }

    void release() {
        const std::lock_guard<std::mutex> lock{mutex_};
        released_ = true;
        cv_.notify_all();
    }

    [[nodiscard]] std::vector<std::uint64_t> order() {
        const std::lock_guard<std::mutex> lock{mutex_};
        return order_;
    }

private:
    std::uint64_t gated_id_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::set<std::uint64_t> seen_;
    std::vector<std::uint64_t> order_;
    bool started_ = false;
    bool released_ = false;
};

service_request deadline_request_for(std::string scenario, std::uint64_t seed,
                                     std::chrono::nanoseconds deadline) {
    service_request request = request_for(std::move(scenario), seed);
    request.slo_deadline = deadline;
    return request;
}

TEST(Service, EdfPopsEarliestDeadlineFirst) {
    start_order_gate gate{1};
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    options.defaults.observer = gate.observer();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    // Wedge the single worker, then queue: no-deadline, 60s, 5s. The EDF
    // pop must run them tightest-deadline-first, arrival order be damned.
    auto wedged = service.submit(request_for("dc", 1));
    gate.await_started();
    auto no_deadline = service.submit(request_for("dc", 2));
    auto loose = service.submit(
        deadline_request_for("dc", 3, std::chrono::seconds{60}));
    auto tight = service.submit(
        deadline_request_for("dc", 4, std::chrono::seconds{5}));
    gate.release();

    EXPECT_EQ(wedged.get().status, request_status::completed);
    EXPECT_EQ(no_deadline.get().status, request_status::completed);
    EXPECT_EQ(loose.get().status, request_status::completed);
    EXPECT_EQ(tight.get().status, request_status::completed);
    EXPECT_EQ(gate.order(), (std::vector<std::uint64_t>{1, 4, 3, 2}));

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.deadline_met, 2u);
    EXPECT_EQ(stats.deadline_missed, 0u);
    EXPECT_EQ(stats.shed_unmeetable, 0u);
}

TEST(Service, FifoPolicyIgnoresDeadlineOrderingButStillMeasures) {
    start_order_gate gate{1};
    service_options options;
    options.workers = 1;
    options.scheduling = scheduling_policy::fifo;
    options.defaults = small_search_defaults();
    options.defaults.observer = gate.observer();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    auto wedged = service.submit(request_for("dc", 1));
    gate.await_started();
    auto first = service.submit(request_for("dc", 2));
    auto tight = service.submit(
        deadline_request_for("dc", 3, std::chrono::seconds{30}));
    gate.release();

    EXPECT_EQ(wedged.get().status, request_status::completed);
    EXPECT_EQ(first.get().status, request_status::completed);
    const service_response timed = tight.get();
    EXPECT_EQ(timed.status, request_status::completed);
    // Arrival order despite request 3's deadline.
    EXPECT_EQ(gate.order(), (std::vector<std::uint64_t>{1, 2, 3}));
    // fifo never preempts...
    EXPECT_NE(timed.result.outcome, search_outcome::deadline_exceeded);
    // ...but the measurement plane still scores the deadline.
    const service_stats stats = service.stats();
    EXPECT_EQ(stats.deadline_met + stats.deadline_missed, 1u);
    EXPECT_EQ(stats.preempted, 0u);
}

TEST(Service, UnmeetableDeadlineIsShedAtAdmission) {
    service_options options;
    options.workers = 1;
    options.min_service_grant = std::chrono::seconds{2};
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    // Even an idle service cannot grant 2s of search before a 100ms
    // deadline: provably unmeetable, shed without burning a worker.
    const service_response shed =
        service.submit(
            deadline_request_for("dc", 1, std::chrono::milliseconds{100}))
            .get();
    EXPECT_EQ(shed.status, request_status::rejected);
    EXPECT_EQ(shed.error, "deadline provably unmeetable at admission");

    // The same deadline WITHOUT the grant floor is admitted and met.
    service_options lax = options;
    lax.min_service_grant = std::chrono::nanoseconds{0};
    deployment_service lax_service{lax};
    lax_service.add_scenario("dc", make_fat_tree_scenario(4));
    const service_response admitted =
        lax_service
            .submit(deadline_request_for("dc", 1, std::chrono::seconds{30}))
            .get();
    EXPECT_EQ(admitted.status, request_status::completed);

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.shed_unmeetable, 1u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.submitted, 0u);
}

TEST(Service, ExpiredDeadlineIsShedAtDequeue) {
    request_gate gate{1};
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    options.defaults.observer = gate.observer();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    auto wedged = service.submit(request_for("dc", 1));
    gate.await_started();
    // 50ms deadline, but the only worker is wedged until well past it.
    auto doomed = service.submit(
        deadline_request_for("dc", 2, std::chrono::milliseconds{50}));
    std::this_thread::sleep_for(std::chrono::milliseconds{120});
    gate.release();

    EXPECT_EQ(wedged.get().status, request_status::completed);
    const service_response shed = doomed.get();
    EXPECT_EQ(shed.status, request_status::rejected);
    EXPECT_EQ(shed.error, "deadline expired before the search started");
    EXPECT_GT(shed.queue_wait_ns.count(), 0);
    EXPECT_EQ(shed.search_ns.count(), 0);

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.shed_unmeetable, 1u);
    EXPECT_EQ(stats.deadline_missed, 0u);  // never ran, so never "missed"
}

TEST(Service, OverBudgetSearchIsPreemptedWithAnytimeResult) {
    service_options options;
    options.workers = 1;
    // Reserve 600ms of the deadline for response assembly: the search is
    // cut early enough that the RESPONSE still meets the deadline.
    options.deadline_headroom = std::chrono::milliseconds{600};
    options.defaults.assessment_rounds = 200;  // time-driven: no iteration cap
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    service_request runaway =
        deadline_request_for("dc", 1, std::chrono::seconds{2});
    runaway.desired_reliability = 2.0;  // unreachable: the search never stops
    runaway.max_search_time = std::chrono::seconds{30};  // would blow the SLO
    const service_response response = service.submit(std::move(runaway)).get();

    ASSERT_EQ(response.status, request_status::completed);
    EXPECT_EQ(response.result.outcome, search_outcome::deadline_exceeded);
    EXPECT_FALSE(response.result.fulfilled);
    EXPECT_EQ(response.result.plan.hosts.size(), 3u);  // anytime plan
    EXPECT_TRUE(response.deadline_met);
    EXPECT_GT(response.search_ns.count(), 0);

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.preempted, 1u);
    EXPECT_EQ(stats.deadline_met, 1u);
    EXPECT_EQ(stats.deadline_missed, 0u);
}

TEST(Service, SchedulingPolicyToString) {
    EXPECT_STREQ(to_string(scheduling_policy::fifo), "fifo");
    EXPECT_STREQ(to_string(scheduling_policy::edf), "edf");
}

// ---- child worker processes (socket transport) -----------------------------

service_options socket_engine_options() {
    service_options options;
    options.workers = 2;
    options.defaults = small_search_defaults();
    options.defaults.backend = assessment_backend_kind::engine;
    options.defaults.engine_transport = engine_transport_kind::socket;
    options.defaults.engine_worker_binary = RECLOUD_WORKER_BIN;
    options.defaults.assessment_threads = 2;
    options.defaults.assessment_batch_rounds = 64;
    return options;
}

TEST(Service, NoChildWorkerProcessesSurviveDestruction) {
    {
        deployment_service service{socket_engine_options()};
        service.add_scenario("dc", make_fat_tree_scenario(4));
        std::vector<std::future<service_response>> futures;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            futures.push_back(service.submit(request_for("dc", seed)));
        }
        for (auto& future : futures) {
            EXPECT_EQ(future.get().status, request_status::completed);
        }
    }  // ~deployment_service: drain + join; every worker fleet is dead
    // No zombies and no live children: the process has NO children at all.
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}

TEST(Service, ShutdownWithSocketFleetIsIdempotentAndDrains) {
    deployment_service service{socket_engine_options()};
    service.add_scenario("dc", make_fat_tree_scenario(4));
    std::vector<std::future<service_response>> futures;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        futures.push_back(service.submit(request_for("dc", seed)));
    }
    service.shutdown();
    service.shutdown();  // idempotent
    // Every admitted request resolved (drained, not dropped).
    for (auto& future : futures) {
        EXPECT_EQ(future.get().status, request_status::completed);
    }
    // Post-shutdown submissions shed; destructor's shutdown is a no-op.
    EXPECT_EQ(service.submit(request_for("dc", 9)).get().status,
              request_status::rejected);
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}

}  // namespace
}  // namespace recloud
