// Concurrent deployment service (service/deployment_service.hpp):
// admission control on a bounded queue, request isolation over shared
// scenario snapshots, per-request telemetry tagging, and drain-on-shutdown.
#include "service/deployment_service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace recloud {
namespace {

recloud_options small_search_defaults() {
    recloud_options defaults;
    defaults.assessment_rounds = 200;
    defaults.max_iterations = 20;
    defaults.deterministic_schedule = true;
    return defaults;
}

service_request request_for(std::string scenario, std::uint64_t seed) {
    service_request request;
    request.scenario = std::move(scenario);
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 1.0;  // unreachable: full budget runs
    request.max_search_time = std::chrono::seconds{30};
    request.seed = seed;
    return request;
}

TEST(Service, CompletesARequest) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    auto future = service.submit(request_for("dc", 3));
    const service_response response = future.get();
    EXPECT_EQ(response.status, request_status::completed);
    EXPECT_EQ(response.request_id, 1u);
    EXPECT_EQ(response.scenario, "dc");
    EXPECT_EQ(response.result.plan.hosts.size(), 3u);
    EXPECT_GT(response.result.stats.rounds, 0u);

    const service_stats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(Service, UnknownScenarioFailsTheRequest) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    const service_response response =
        service.submit(request_for("nowhere", 1)).get();
    EXPECT_EQ(response.status, request_status::failed);
    EXPECT_FALSE(response.error.empty());
    EXPECT_EQ(service.stats().failed, 1u);
}

TEST(Service, ZeroCapacityQueueRejectsDeterministically) {
    // queue_capacity = 0 makes EVERY submission overflow — the admission
    // path is exercised without racing the workers.
    service_options options;
    options.workers = 1;
    options.queue_capacity = 0;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));

    for (int i = 0; i < 3; ++i) {
        const service_response response =
            service.submit(request_for("dc", 1)).get();
        EXPECT_EQ(response.status, request_status::rejected);
        EXPECT_FALSE(response.error.empty());
    }
    const service_stats stats = service.stats();
    EXPECT_EQ(stats.rejected, 3u);
    EXPECT_EQ(stats.submitted, 0u);
    EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(Service, SubmitAfterShutdownIsRejected) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));
    service.shutdown();
    service.shutdown();  // idempotent
    const service_response response =
        service.submit(request_for("dc", 1)).get();
    EXPECT_EQ(response.status, request_status::rejected);
}

TEST(Service, ScenarioReplacementDoesNotAffectAdmittedRequests) {
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    const scenario_ptr original = make_fat_tree_scenario(4);
    service.add_scenario("dc", original);
    auto future = service.submit(request_for("dc", 3));
    // Replace the name immediately; the admitted request captured the
    // original snapshot at submission.
    service.add_scenario("dc", make_fat_tree_scenario(6));
    const service_response response = future.get();
    EXPECT_EQ(response.status, request_status::completed);
    // A k=4 fat tree has 16 hosts; k=6 host ids extend far beyond. The plan
    // must come from the ORIGINAL snapshot's host range.
    for (const node_id host : response.result.plan.hosts) {
        bool in_original = false;
        for (const node_id h : original->topology().hosts) {
            if (h == host) {
                in_original = true;
                break;
            }
        }
        EXPECT_TRUE(in_original);
    }
    EXPECT_GT(service.find_scenario("dc")->topology().hosts.size(),
              original->topology().hosts.size());
}

TEST(Service, ConcurrentRequestsMatchSoloRuns) {
    // The isolation contract: 8 requests racing on 2 workers against ONE
    // shared snapshot produce exactly what 8 solo re_cloud runs produce.
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    const recloud_options defaults = small_search_defaults();

    std::vector<deployment_response> solo;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        recloud_options options = defaults;
        options.seed = seed;
        re_cloud system{snapshot, options};
        deployment_request request;
        request.app = application::k_of_n(2, 3);
        request.desired_reliability = 1.0;
        request.max_search_time = std::chrono::seconds{30};
        solo.push_back(system.find_deployment(request));
    }

    service_options options;
    options.workers = 2;
    options.defaults = defaults;
    deployment_service service{options};
    service.add_scenario("dc", snapshot);
    std::vector<std::future<service_response>> futures;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        futures.push_back(service.submit(request_for("dc", seed)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const service_response response = futures[i].get();
        ASSERT_EQ(response.status, request_status::completed) << response.error;
        EXPECT_EQ(response.result.plan.hosts, solo[i].plan.hosts);
        EXPECT_EQ(response.result.stats.reliable, solo[i].stats.reliable);
        EXPECT_EQ(response.result.stats.rounds, solo[i].stats.rounds);
        EXPECT_EQ(response.result.score, solo[i].score);
        EXPECT_EQ(response.result.winning_chain, solo[i].winning_chain);
    }
    const service_stats stats = service.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_GE(stats.peak_queue_depth, 1u);
}

TEST(Service, PerRequestOverridesApply) {
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    deployment_service service{options};
    service.add_scenario("dc", snapshot);

    service_request multi = request_for("dc", 9);
    multi.search_chains = 3;
    multi.max_iterations = 12;
    const service_response response = service.submit(std::move(multi)).get();
    ASSERT_EQ(response.status, request_status::completed);
    EXPECT_LT(response.result.winning_chain, 3u);
    // 12-iteration budget, not the 20 of the defaults.
    EXPECT_LE(response.result.search.plans_generated, 12u);

    // The same request through a solo re_cloud with the override applied.
    recloud_options solo_options = options.defaults;
    solo_options.seed = 9;
    solo_options.search_chains = 3;
    solo_options.max_iterations = 12;
    re_cloud solo{snapshot, solo_options};
    deployment_request request;
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{30};
    const deployment_response expected = solo.find_deployment(request);
    EXPECT_EQ(response.result.plan.hosts, expected.plan.hosts);
    EXPECT_EQ(response.result.winning_chain, expected.winning_chain);
}

TEST(Service, ObserverEventsAreTaggedWithRequestIds) {
    std::mutex seen_mutex;
    std::set<std::uint64_t> seen_requests;
    service_options options;
    options.workers = 2;
    options.defaults = small_search_defaults();
    options.defaults.observer = [&](const obs::search_iteration_event& event) {
        const std::lock_guard<std::mutex> lock{seen_mutex};
        seen_requests.insert(event.request_id);
    };
    deployment_service service{options};
    service.add_scenario("dc", make_fat_tree_scenario(4));
    std::vector<std::future<service_response>> futures;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        futures.push_back(service.submit(request_for("dc", seed)));
    }
    std::set<std::uint64_t> expected_ids;
    for (auto& future : futures) {
        const service_response response = future.get();
        ASSERT_EQ(response.status, request_status::completed);
        expected_ids.insert(response.request_id);
    }
    const std::lock_guard<std::mutex> lock{seen_mutex};
    EXPECT_EQ(seen_requests, expected_ids);  // every id tagged, no id zero
    EXPECT_EQ(seen_requests.count(0), 0u);
}

TEST(Service, ShutdownDrainsAdmittedRequests) {
    // Everything admitted before shutdown still completes; the destructor
    // path is the same code.
    service_options options;
    options.workers = 1;
    options.defaults = small_search_defaults();
    std::vector<std::future<service_response>> futures;
    {
        deployment_service service{options};
        service.add_scenario("dc", make_fat_tree_scenario(4));
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            futures.push_back(service.submit(request_for("dc", seed)));
        }
        service.shutdown();
    }
    for (auto& future : futures) {
        const service_response response = future.get();
        EXPECT_EQ(response.status, request_status::completed);
    }
}

TEST(Service, StatusToString) {
    EXPECT_STREQ(to_string(request_status::completed), "completed");
    EXPECT_STREQ(to_string(request_status::rejected), "rejected");
    EXPECT_STREQ(to_string(request_status::failed), "failed");
}

}  // namespace
}  // namespace recloud
