#include "topology/dcell.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "faults/round_state.hpp"
#include "routing/bfs_reachability.hpp"
#include "topology/stats.hpp"

namespace recloud {
namespace {

TEST(DCell, CountsMatchConstruction) {
    // n=4: 5 cells x 4 servers = 20 servers, 5 switches.
    const built_topology topo = build_dcell({.servers_per_cell = 4});
    const topology_stats s = compute_topology_stats(topo);
    EXPECT_EQ(s.hosts, 20u);
    EXPECT_EQ(s.edge_switches + s.border_switches, 5u);
    EXPECT_EQ(s.border_switches, 1u);
    // Links: 5 cells x 4 access + C(5,2) inter-cell + 1 peering = 20+10+1.
    EXPECT_EQ(s.links, 31u);
}

TEST(DCell, EveryServerHasExactlyTwoPorts) {
    const built_topology topo = build_dcell({.servers_per_cell = 5});
    for (const node_id server : topo.hosts) {
        EXPECT_EQ(topo.graph.degree(server), 2u);
    }
}

TEST(DCell, EveryCellPairSharesExactlyOneDirectLink) {
    const dcell_params params{.servers_per_cell = 4};
    const built_topology topo = build_dcell(params);
    const int cells = params.servers_per_cell + 1;
    const auto cell_of = [&](node_id server) {
        // Servers were created cell-major right after their cell's switch.
        return static_cast<int>(server / (params.servers_per_cell + 1));
    };
    std::vector<std::vector<int>> direct(cells, std::vector<int>(cells, 0));
    for (const node_id server : topo.hosts) {
        for (const node_id peer : topo.graph.neighbors(server)) {
            if (topo.graph.kind(peer) != node_kind::host) {
                continue;
            }
            const int a = cell_of(server);
            const int b = cell_of(peer);
            EXPECT_NE(a, b) << "intra-cell server-server link";
            ++direct[a][b];
        }
    }
    for (int i = 0; i < cells; ++i) {
        for (int j = 0; j < cells; ++j) {
            if (i != j) {
                EXPECT_EQ(direct[i][j], 1) << i << "," << j;
            }
        }
    }
}

TEST(DCell, HealthyConnectivity) {
    const built_topology topo = build_dcell({.servers_per_cell = 4});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    rs.begin_round(std::vector<component_id>{});
    oracle.begin_round(rs);
    for (const node_id server : topo.hosts) {
        EXPECT_TRUE(oracle.border_reachable(server));
    }
}

TEST(DCell, CellSurvivesItsSwitchViaServerRelay) {
    // Kill a non-border cell's switch: its servers keep border
    // reachability through their inter-cell server links — the defining
    // DCell fault-tolerance property.
    const built_topology topo = build_dcell({.servers_per_cell = 4,
                                             .border_cells = 1});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    // Cell 1's switch is the second switch created; find it as the rack of
    // the first cell-1 server.
    const node_id cell1_server = topo.hosts[4];
    const node_id cell1_switch = rack_of(topo.graph, cell1_server);
    rs.begin_round(std::vector<component_id>{cell1_switch});
    oracle.begin_round(rs);
    for (int s = 0; s < 4; ++s) {
        EXPECT_TRUE(oracle.border_reachable(topo.hosts[4 + s])) << s;
    }
}

TEST(DCell, IsolatedWhenSwitchAndRelayDie) {
    // A server is cut off when both its ports die: its cell switch and its
    // single inter-cell peer.
    const built_topology topo = build_dcell({.servers_per_cell = 4,
                                             .border_cells = 1});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    const node_id victim = topo.hosts[4];  // cell 1, server 0
    std::vector<component_id> failed{rack_of(topo.graph, victim)};
    for (const node_id peer : topo.graph.neighbors(victim)) {
        if (topo.graph.kind(peer) == node_kind::host) {
            failed.push_back(peer);
        }
    }
    ASSERT_EQ(failed.size(), 2u);
    rs.begin_round(failed);
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(victim));
}

TEST(DCell, InvalidParamsRejected) {
    EXPECT_THROW((void)build_dcell({.servers_per_cell = 1}),
                 std::invalid_argument);
    EXPECT_THROW((void)build_dcell({.servers_per_cell = 4, .border_cells = 0}),
                 std::invalid_argument);
    EXPECT_THROW((void)build_dcell({.servers_per_cell = 4, .border_cells = 6}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace recloud
