// Immutable scenario snapshots (core/scenario.hpp): builder validation,
// oracle-clone-only access, keep-alive ownership, and the verdict-cache
// foot-gun that scenario::validate() closes — an oracle consulting link
// components the snapshot does not name used to silently make cached
// verdicts (and symmetry signatures) unsound; now it refuses to freeze.
#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/recloud.hpp"
#include "routing/bfs_reachability.hpp"
#include "routing/fat_tree_routing.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/links.hpp"

namespace recloud {
namespace {

struct scenario_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 3, .border_leaves = 1});
    component_registry registry{topo.graph};

    scenario_fixture() {
        rng random{7};
        assign_paper_probabilities(registry, random);
    }
};

/// Deliberately non-cloneable oracle (reachability_oracle::clone() defaults
/// to nullptr) — scenarios must refuse it.
class uncloneable_oracle final : public reachability_oracle {
public:
    void begin_round(round_state&) override {}
    [[nodiscard]] bool border_reachable(node_id) override { return true; }
    [[nodiscard]] bool host_to_host(node_id, node_id) override { return true; }
};

TEST(Scenario, FreezeRequiresTopologyRegistryAndOracle) {
    scenario_fixture f;
    bfs_reachability oracle{f.topo};

    EXPECT_THROW((void)scenario_builder{}.freeze(), std::invalid_argument);
    EXPECT_THROW(
        (void)scenario_builder{}.topology(f.topo).registry(f.registry).freeze(),
        std::invalid_argument);
    EXPECT_THROW(
        (void)scenario_builder{}.topology(f.topo).oracle(oracle).freeze(),
        std::invalid_argument);
    EXPECT_NO_THROW((void)scenario_builder{}
                        .topology(f.topo)
                        .registry(f.registry)
                        .oracle(oracle)
                        .freeze());
}

TEST(Scenario, RegistryMustCoverEveryNode) {
    scenario_fixture f;
    const built_topology other = build_leaf_spine(
        {.spines = 3, .leaves = 6, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry small{f.topo.graph};  // too small for `other`
    bfs_reachability oracle{other};
    EXPECT_THROW((void)scenario_builder{}
                     .topology(other)
                     .registry(small)
                     .oracle(oracle)
                     .freeze(),
                 std::invalid_argument);
}

TEST(Scenario, OraclePrototypeMustSupportClone) {
    scenario_fixture f;
    uncloneable_oracle oracle;
    EXPECT_THROW((void)scenario_builder{}
                     .topology(f.topo)
                     .registry(f.registry)
                     .oracle(oracle)
                     .freeze(),
                 std::invalid_argument);
}

TEST(Scenario, MakeOracleHandsOutIndependentClones) {
    scenario_fixture f;
    bfs_reachability oracle{f.topo};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(f.topo)
                                      .registry(f.registry)
                                      .oracle(oracle)
                                      .freeze();
    const auto a = snapshot->make_oracle();
    const auto b = snapshot->make_oracle();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), static_cast<const reachability_oracle*>(&oracle));
}

// ---- the recloud_context foot-gun, now a freeze-time error ---------------

TEST(Scenario, OracleConsultingUndeclaredLinksRefusesToFreeze) {
    // Historic unsoundness: the oracle judged link failures, but the
    // context's `links` stayed null — so the verdict-cache support set and
    // symmetry signatures filtered link components out, and cached verdicts
    // could contradict route-and-check. That misconfiguration compiled and
    // ran silently; it must now throw at freeze().
    scenario_fixture f;
    const link_attachment links = attach_link_components(f.topo, f.registry);
    bfs_reachability oracle{f.topo, &links};

    EXPECT_THROW((void)scenario_builder{}
                     .topology(f.topo)
                     .registry(f.registry)
                     .oracle(oracle)  // consults `links`...
                     .freeze(),       // ...but the scenario names none
                 std::invalid_argument);
}

TEST(Scenario, OracleConsultingDifferentLinksRefusesToFreeze) {
    scenario_fixture f;
    const link_attachment links = attach_link_components(f.topo, f.registry);
    const link_attachment other = attach_link_components(f.topo, f.registry);
    bfs_reachability oracle{f.topo, &links};
    EXPECT_THROW((void)scenario_builder{}
                     .topology(f.topo)
                     .registry(f.registry)
                     .links(other)  // a DIFFERENT attachment than consulted
                     .oracle(oracle)
                     .freeze(),
                 std::invalid_argument);
}

TEST(Scenario, MatchingLinksFreeze) {
    scenario_fixture f;
    const link_attachment links = attach_link_components(f.topo, f.registry);
    bfs_reachability oracle{f.topo, &links};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(f.topo)
                                      .registry(f.registry)
                                      .links(links)
                                      .oracle(oracle)
                                      .freeze();
    EXPECT_EQ(snapshot->links(), &links);
}

TEST(Scenario, LinkBlindOracleMayIgnoreDeclaredLinks) {
    // The converse direction is sound: declaring links the oracle ignores
    // only makes caching/symmetry more conservative.
    scenario_fixture f;
    const link_attachment links = attach_link_components(f.topo, f.registry);
    bfs_reachability oracle{f.topo};  // no link awareness
    EXPECT_NO_THROW((void)scenario_builder{}
                        .topology(f.topo)
                        .registry(f.registry)
                        .links(links)
                        .oracle(oracle)
                        .freeze());
}

TEST(Scenario, CacheStaysSoundOnLinkAwareScenario) {
    // Regression for the unsoundness itself: on a correctly-declared
    // link-aware scenario, a search with the verdict cache ON must land on
    // the identical plan and stats as with the cache OFF.
    scenario_fixture f;
    const link_attachment links = attach_link_components(f.topo, f.registry);
    for (const component_id c : links.component_of_edge) {
        if (c != invalid_node) {
            f.registry.set_probability(c, 0.02);  // links must actually fail
        }
    }
    bfs_reachability oracle{f.topo, &links};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(f.topo)
                                      .registry(f.registry)
                                      .links(links)
                                      .oracle(oracle)
                                      .freeze();
    const auto run = [&](bool cached) {
        recloud_options options;
        options.assessment_rounds = 400;
        options.max_iterations = 25;
        options.deterministic_schedule = true;
        options.verdict_cache = cached;
        options.seed = 9;
        re_cloud system{snapshot, options};
        deployment_request request;
        request.app = application::k_of_n(2, 3);
        request.desired_reliability = 1.0;
        request.max_search_time = std::chrono::seconds{20};
        return system.find_deployment(request);
    };
    const deployment_response off = run(false);
    const deployment_response on = run(true);
    EXPECT_EQ(on.plan.hosts, off.plan.hosts);
    EXPECT_EQ(on.stats.reliable, off.stats.reliable);
    EXPECT_EQ(on.stats.rounds, off.stats.rounds);
    EXPECT_EQ(on.search.plans_generated, off.search.plans_generated);
}

// ---- ownership ----------------------------------------------------------

TEST(Scenario, FatTreeScenarioOwnsItsParts) {
    // The self-owning convenience: nothing here outlives the scenario_ptr,
    // yet searches run fine — the snapshot keeps the infrastructure and the
    // oracle prototype alive.
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    EXPECT_NE(snapshot->forest(), nullptr);
    EXPECT_NE(snapshot->workloads(), nullptr);

    recloud_options options;
    options.assessment_rounds = 300;
    options.max_iterations = 20;
    re_cloud system{snapshot, options};
    deployment_request request;
    request.app = application::k_of_n(1, 2);
    request.desired_reliability = 0.5;
    request.max_search_time = std::chrono::seconds{10};
    const deployment_response response = system.find_deployment(request);
    EXPECT_EQ(response.plan.hosts.size(), 2u);
}

TEST(Scenario, BorrowedInfrastructureScenario) {
    const auto infra = fat_tree_infrastructure::build_shared(4);
    const scenario_ptr snapshot = make_fat_tree_scenario(*infra);
    EXPECT_EQ(&snapshot->topology(), &infra->topology());
    EXPECT_EQ(&snapshot->registry(), &infra->registry());
    const auto oracle = snapshot->make_oracle();
    EXPECT_NE(oracle, nullptr);
}

TEST(Scenario, SharedAcrossManyConsumers) {
    // Two re_cloud instances over ONE snapshot produce identical responses
    // for identical options — and never disturb each other (each owns its
    // oracle clones and samplers).
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    recloud_options options;
    options.assessment_rounds = 300;
    options.max_iterations = 20;
    options.deterministic_schedule = true;
    options.seed = 3;
    deployment_request request;
    request.app = application::k_of_n(1, 2);
    request.desired_reliability = 0.9;
    request.max_search_time = std::chrono::seconds{10};

    re_cloud a{snapshot, options};
    re_cloud b{snapshot, options};
    const deployment_response ra = a.find_deployment(request);
    const deployment_response rb = b.find_deployment(request);
    EXPECT_EQ(ra.plan.hosts, rb.plan.hosts);
    EXPECT_EQ(ra.stats.reliable, rb.stats.reliable);
    EXPECT_EQ(ra.stats.rounds, rb.stats.rounds);
}

TEST(Scenario, ConcurrentSearchesOverOneInfrastructure) {
    // Regression for the shared-rng race: fat_tree_infrastructure used to
    // expose its `rng&`, and concurrent searches seeding from it raced (and
    // drew order-dependent values). The accessor is gone — all per-search
    // randomness comes from the request seed and forked substreams — so N
    // searches borrowing ONE infrastructure must be data-race-free (the
    // TSan job runs this) AND reproduce their sequential runs exactly.
    const auto infra = fat_tree_infrastructure::build_shared(4);
    const scenario_ptr snapshot = make_fat_tree_scenario(*infra);

    recloud_options options;
    options.assessment_rounds = 200;
    options.max_iterations = 15;
    options.deterministic_schedule = true;
    deployment_request request;
    request.app = application::k_of_n(1, 2);
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{20};

    constexpr std::size_t searches = 4;
    std::vector<deployment_response> sequential;
    for (std::size_t i = 0; i < searches; ++i) {
        recloud_options run_options = options;
        run_options.seed = 100 + i;
        re_cloud system{snapshot, run_options};
        sequential.push_back(system.find_deployment(request));
    }

    std::vector<deployment_response> concurrent(searches);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < searches; ++i) {
        threads.emplace_back([&, i] {
            recloud_options run_options = options;
            run_options.seed = 100 + i;
            re_cloud system{snapshot, run_options};
            concurrent[i] = system.find_deployment(request);
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    for (std::size_t i = 0; i < searches; ++i) {
        EXPECT_EQ(concurrent[i].plan.hosts, sequential[i].plan.hosts);
        EXPECT_EQ(concurrent[i].stats.reliable, sequential[i].stats.reliable);
        EXPECT_EQ(concurrent[i].stats.rounds, sequential[i].stats.rounds);
    }
}

}  // namespace
}  // namespace recloud
