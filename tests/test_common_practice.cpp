#include "search/common_practice.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/fat_tree.hpp"

namespace recloud {
namespace {

struct cp_fixture {
    fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};
    fault_tree_forest forest{ft.graph().node_count()};
    power_assignment power = attach_power_supplies(ft.topology(), registry,
                                                   forest, {.supply_count = 5});
    rng random{17};
    workload_map loads{ft.topology(), random};
};

TEST(CommonPractice, PicksLeastLoadedDistinctRacks) {
    cp_fixture f;
    const deployment_plan plan =
        common_practice_plan(f.ft.topology(), f.loads, 5);
    ASSERT_EQ(plan.hosts.size(), 5u);

    // Distinct racks.
    std::set<node_id> racks;
    for (const node_id h : plan.hosts) {
        racks.insert(rack_of(f.ft.graph(), h));
    }
    EXPECT_EQ(racks.size(), 5u);

    // Each chosen host is the least-loaded host of its own rack (otherwise
    // the greedy sweep would have chosen the lighter one first).
    for (const node_id h : plan.hosts) {
        const node_id rack = rack_of(f.ft.graph(), h);
        for (const node_id other : f.ft.graph().neighbors(rack)) {
            if (f.ft.graph().kind(other) == node_kind::host) {
                EXPECT_LE(f.loads.of(h), f.loads.of(other));
            }
        }
    }
}

TEST(CommonPractice, GlobalGreedyOptimality) {
    // No other distinct-rack selection has a lower total load: compare
    // against the best rack-minimum selection.
    cp_fixture f;
    const deployment_plan plan =
        common_practice_plan(f.ft.topology(), f.loads, 5);
    // Collect each rack's minimum load, take the 5 smallest.
    std::vector<double> rack_minima;
    for (const node_id rack : f.ft.graph().nodes_of_kind(node_kind::edge_switch)) {
        double min_load = 2.0;
        for (const node_id h : f.ft.graph().neighbors(rack)) {
            if (f.ft.graph().kind(h) == node_kind::host) {
                min_load = std::min(min_load, f.loads.of(h));
            }
        }
        rack_minima.push_back(min_load);
    }
    std::sort(rack_minima.begin(), rack_minima.end());
    double best = 0.0;
    for (int i = 0; i < 5; ++i) {
        best += rack_minima[i];
    }
    double achieved = 0.0;
    for (const node_id h : plan.hosts) {
        achieved += f.loads.of(h);
    }
    EXPECT_NEAR(achieved, best, 1e-12);
}

TEST(CommonPractice, ExclusionsProduceNonRepeatingPlans) {
    cp_fixture f;
    const deployment_plan first =
        common_practice_plan(f.ft.topology(), f.loads, 5);
    const deployment_plan second =
        common_practice_plan(f.ft.topology(), f.loads, 5, first.hosts);
    for (const node_id h : second.hosts) {
        EXPECT_EQ(std::count(first.hosts.begin(), first.hosts.end(), h), 0);
    }
}

TEST(CommonPractice, RelaxesRackConstraintWhenRacksRunOut) {
    // k=4 has 6 racks; asking for 8 instances must still succeed.
    fat_tree small = fat_tree::build(4);
    rng random{3};
    const workload_map loads{small.topology(), random};
    const deployment_plan plan =
        common_practice_plan(small.topology(), loads, 8);
    EXPECT_EQ(plan.hosts.size(), 8u);
    const std::set<node_id> unique(plan.hosts.begin(), plan.hosts.end());
    EXPECT_EQ(unique.size(), 8u);
}

TEST(CommonPractice, ThrowsWhenHostsExhausted) {
    cp_fixture f;
    EXPECT_THROW(
        (void)common_practice_plan(f.ft.topology(), f.loads, 200,
                                   f.ft.topology().hosts),  // all excluded
        std::invalid_argument);
}

TEST(PowerDiversity, CountsDistinctSupplies) {
    cp_fixture f;
    // All instances in one rack share the group supply + the rack's supply.
    deployment_plan concentrated;
    concentrated.hosts = {f.ft.host(0, 0, 0), f.ft.host(0, 0, 1)};
    const std::size_t concentrated_diversity =
        power_diversity(f.ft.topology(), f.power, concentrated);
    EXPECT_LE(concentrated_diversity, 2u);

    deployment_plan spread;
    spread.hosts = {f.ft.host(0, 0, 0), f.ft.host(3, 2, 0)};
    EXPECT_GE(power_diversity(f.ft.topology(), f.power, spread),
              concentrated_diversity);
}

TEST(EnhancedCommonPractice, PicksMostDiversifiedCandidate) {
    cp_fixture f;
    const deployment_plan enhanced = enhanced_common_practice_plan(
        f.ft.topology(), f.loads, f.power, 5, {.candidate_plans = 5});
    ASSERT_EQ(enhanced.hosts.size(), 5u);

    // Rebuild the 5 candidates and verify the chosen one maximizes
    // diversity.
    std::vector<deployment_plan> candidates;
    std::vector<node_id> excluded;
    for (int c = 0; c < 5; ++c) {
        candidates.push_back(
            common_practice_plan(f.ft.topology(), f.loads, 5, excluded));
        excluded.insert(excluded.end(), candidates.back().hosts.begin(),
                        candidates.back().hosts.end());
    }
    std::size_t best_diversity = 0;
    for (const auto& candidate : candidates) {
        best_diversity = std::max(
            best_diversity, power_diversity(f.ft.topology(), f.power, candidate));
    }
    EXPECT_EQ(power_diversity(f.ft.topology(), f.power, enhanced),
              best_diversity);
}

TEST(EnhancedCommonPractice, SingleCandidateEqualsVanilla) {
    cp_fixture f;
    const deployment_plan vanilla =
        common_practice_plan(f.ft.topology(), f.loads, 5);
    const deployment_plan enhanced = enhanced_common_practice_plan(
        f.ft.topology(), f.loads, f.power, 5, {.candidate_plans = 1});
    EXPECT_EQ(vanilla, enhanced);
}

TEST(EnhancedCommonPractice, ZeroCandidatesRejected) {
    cp_fixture f;
    EXPECT_THROW(
        (void)enhanced_common_practice_plan(f.ft.topology(), f.loads, f.power,
                                            5, {.candidate_plans = 0}),
        std::invalid_argument);
}

TEST(EnhancedCommonPractice, StopsGracefullyWhenHostsRunLow) {
    // k=4 has 12 hosts; 5 candidates x 5 instances would need 25. The
    // builder must stop early and still return a valid plan.
    fat_tree small = fat_tree::build(4);
    component_registry registry{small.graph()};
    fault_tree_forest forest{small.graph().node_count()};
    const power_assignment power =
        attach_power_supplies(small.topology(), registry, forest, {});
    rng random{5};
    const workload_map loads{small.topology(), random};
    const deployment_plan plan = enhanced_common_practice_plan(
        small.topology(), loads, power, 5, {.candidate_plans = 5});
    EXPECT_EQ(plan.hosts.size(), 5u);
}

}  // namespace
}  // namespace recloud
