#include "faults/round_state.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace recloud {
namespace {

TEST(RoundState, RawStateTracksFailedSet) {
    round_state rs{5, nullptr};
    const std::vector<component_id> failed{1, 3};
    rs.begin_round(failed);
    EXPECT_FALSE(rs.raw_failed(0));
    EXPECT_TRUE(rs.raw_failed(1));
    EXPECT_FALSE(rs.raw_failed(2));
    EXPECT_TRUE(rs.raw_failed(3));
}

TEST(RoundState, NewRoundClearsOldFailures) {
    round_state rs{4, nullptr};
    rs.begin_round(std::vector<component_id>{2});
    EXPECT_TRUE(rs.raw_failed(2));
    rs.begin_round(std::vector<component_id>{0});
    EXPECT_FALSE(rs.raw_failed(2));
    EXPECT_TRUE(rs.raw_failed(0));
}

TEST(RoundState, EffectiveEqualsRawWithoutForest) {
    round_state rs{3, nullptr};
    rs.begin_round(std::vector<component_id>{1});
    EXPECT_FALSE(rs.failed(0));
    EXPECT_TRUE(rs.failed(1));
}

TEST(RoundState, FaultTreeFailsDependent) {
    // Component 0 depends on component 2 (e.g. host on power supply).
    fault_tree_forest forest{3};
    forest.attach(0, forest.add_leaf(2));
    round_state rs{3, &forest};

    rs.begin_round(std::vector<component_id>{2});
    EXPECT_TRUE(rs.failed(0));       // via dependency
    EXPECT_FALSE(rs.raw_failed(0));  // its own state is alive
    EXPECT_FALSE(rs.failed(1));
    EXPECT_TRUE(rs.failed(2));

    rs.begin_round(std::vector<component_id>{});
    EXPECT_FALSE(rs.failed(0));  // memo does not leak across rounds
}

TEST(RoundState, MemoizationIsStableWithinRound) {
    fault_tree_forest forest{3};
    forest.attach(0, forest.add_leaf(2));
    round_state rs{3, &forest};
    rs.begin_round(std::vector<component_id>{2});
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(rs.failed(0));
    }
}

TEST(RoundState, EpochAdvancesPerRound) {
    round_state rs{2, nullptr};
    const std::uint32_t e0 = rs.epoch();
    rs.begin_round(std::vector<component_id>{});
    EXPECT_EQ(rs.epoch(), e0 + 1);
    rs.begin_round(std::vector<component_id>{});
    EXPECT_EQ(rs.epoch(), e0 + 2);
}

TEST(RoundState, ComponentCount) {
    const round_state rs{17, nullptr};
    EXPECT_EQ(rs.component_count(), 17u);
}

TEST(RoundState, OwnFailureWinsEvenWithHealthyTree) {
    fault_tree_forest forest{3};
    forest.attach(0, forest.add_leaf(2));
    round_state rs{3, &forest};
    rs.begin_round(std::vector<component_id>{0});
    EXPECT_TRUE(rs.failed(0));
}

}  // namespace
}  // namespace recloud
