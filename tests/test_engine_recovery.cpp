// Recovery tests for the fault-tolerant execution engine (exec/engine.cpp):
// under injected worker crashes, stalls past the batch deadline, corrupted
// and truncated result frames — up to every worker dead — the engine must
// return assessment_stats bit-identical to the serial route-and-check and
// to its own fault-free run, at any worker count. exec/chaos.hpp supplies
// the seeded, scheduling-independent fault schedule.
#include "exec/chaos.hpp"
#include "exec/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>

#include "assess/assessor.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

constexpr std::size_t k_rounds = 2000;
constexpr std::uint64_t k_seed = 404;

struct recovery_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    application app = application::k_of_n(2, 3);
    deployment_plan plan;

    recovery_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, 0.03);
            }
        }
        plan.hosts = {topo.hosts[0], topo.hosts[5], topo.hosts[10]};
    }

    oracle_factory factory() {
        return [this] { return std::make_unique<bfs_reachability>(topo); };
    }

    /// Ground truth: the single-threaded route-and-check on the same stream.
    assessment_stats serial_reference() {
        extended_dagger_sampler sampler{registry.probabilities(), k_seed};
        round_state rs{registry.size(), &forest};
        bfs_reachability oracle{topo};
        return assess_deployment(sampler, rs, oracle, app, plan, k_rounds);
    }

    /// One engine assessment under `options`; exposes the engine's recovery
    /// counters through `stats_out`.
    assessment_stats run_engine(engine_options options,
                                engine_stats* stats_out = nullptr) {
        extended_dagger_sampler sampler{registry.probabilities(), k_seed};
        assessment_engine engine{registry.size(), &forest, factory(), options};
        const assessment_stats stats =
            engine.assess(sampler, app, plan, k_rounds);
        if (stats_out != nullptr) {
            *stats_out = engine.stats();
        }
        return stats;
    }
};

void expect_identical(const assessment_stats& got, const assessment_stats& want) {
    EXPECT_EQ(got.rounds, want.rounds);
    EXPECT_EQ(got.reliable, want.reliable);
}

// ---- chaos schedule -------------------------------------------------------

TEST(ChaosSchedule, IsDeterministicAndScheduleIndependent) {
    const chaos_schedule a{{.seed = 9, .crash_rate = 0.25, .stall_rate = 0.25}};
    const chaos_schedule b{{.seed = 9, .crash_rate = 0.25, .stall_rate = 0.25}};
    for (std::uint64_t batch = 0; batch < 50; ++batch) {
        for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
            EXPECT_EQ(a.fault_for(batch, attempt, 1),
                      b.fault_for(batch, attempt, 1));
        }
    }
}

TEST(ChaosSchedule, RatesRoughlyMatchRequested) {
    const chaos_schedule chaos{{.seed = 7, .crash_rate = 0.3}};
    std::size_t crashes = 0;
    constexpr std::size_t trials = 4000;
    for (std::uint64_t i = 0; i < trials; ++i) {
        if (chaos.fault_for(i, 0, 0) == chaos_fault::crash) {
            ++crashes;
        }
    }
    const double rate = static_cast<double>(crashes) / trials;
    EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(ChaosSchedule, RejectsInvalidRates) {
    EXPECT_THROW(chaos_schedule({.crash_rate = -0.1}), std::invalid_argument);
    EXPECT_THROW(chaos_schedule({.crash_rate = 0.6, .corrupt_rate = 0.6}),
                 std::invalid_argument);
}

TEST(ChaosSchedule, CorruptFlipsExactlyOneBit) {
    std::vector<std::byte> buffer(64, std::byte{0});
    chaos_schedule::corrupt(buffer, 1, 2, 3);
    std::size_t set_bits = 0;
    for (const std::byte b : buffer) {
        set_bits += static_cast<std::size_t>(
            __builtin_popcount(static_cast<unsigned>(b)));
    }
    EXPECT_EQ(set_bits, 1u);
}

TEST(ChaosSchedule, TruncateAlwaysShortens) {
    for (std::uint64_t attempt = 0; attempt < 32; ++attempt) {
        std::vector<std::byte> buffer(40, std::byte{0xab});
        chaos_schedule::truncate(buffer, 0, attempt, 0);
        EXPECT_LT(buffer.size(), 40u);
    }
}

// ---- recovery paths -------------------------------------------------------

TEST(EngineRecovery, WorkerCrashMidBatchIsRetried) {
    recovery_fixture f;
    const assessment_stats serial = f.serial_reference();
    const chaos_schedule chaos{{.seed = 11, .crash_rate = 0.3}};

    for (const std::size_t workers : {1u, 2u, 8u}) {
        engine_stats es;
        const assessment_stats stats = f.run_engine(
            {.workers = workers, .batch_rounds = 64, .max_attempts = 25,
             .chaos = &chaos},
            &es);
        expect_identical(stats, serial);
        EXPECT_GT(es.worker_crashes, 0u) << workers;
        // Recovery happened one way or the other: a failed worker is
        // excluded for that batch, so a lone worker degrades instead of
        // retrying.
        EXPECT_GT(es.retries + es.degraded, 0u) << workers;
        if (workers > 1) {
            EXPECT_GT(es.retries, 0u) << workers;
        }
    }
}

TEST(EngineRecovery, StalledWorkerPastDeadlineIsRedispatched) {
    recovery_fixture f;
    const assessment_stats serial = f.serial_reference();
    const chaos_schedule chaos{{.seed = 21,
                                .stall_rate = 0.25,
                                .stall_duration = std::chrono::milliseconds{50}}};

    engine_stats es;
    const assessment_stats stats = f.run_engine(
        {.workers = 4,
         .batch_rounds = 250,
         .max_attempts = 25,
         .batch_deadline = std::chrono::milliseconds{5},
         .chaos = &chaos},
        &es);
    expect_identical(stats, serial);
    EXPECT_GT(es.deadline_misses, 0u);
    EXPECT_GT(es.retries, 0u);
}

TEST(EngineRecovery, CorruptedResultFrameIsDetectedAndRetried) {
    recovery_fixture f;
    const assessment_stats serial = f.serial_reference();
    const chaos_schedule chaos{{.seed = 31, .corrupt_rate = 0.3}};

    for (const std::size_t workers : {1u, 2u, 8u}) {
        engine_stats es;
        const assessment_stats stats = f.run_engine(
            {.workers = workers, .batch_rounds = 64, .max_attempts = 25,
             .chaos = &chaos},
            &es);
        expect_identical(stats, serial);
        EXPECT_GT(es.invalid_frames, 0u) << workers;
    }
}

TEST(EngineRecovery, TruncatedResultFrameIsDetectedAndRetried) {
    recovery_fixture f;
    const assessment_stats serial = f.serial_reference();
    const chaos_schedule chaos{{.seed = 41, .truncate_rate = 0.3}};

    for (const std::size_t workers : {1u, 2u, 8u}) {
        engine_stats es;
        const assessment_stats stats = f.run_engine(
            {.workers = workers, .batch_rounds = 64, .max_attempts = 25,
             .chaos = &chaos},
            &es);
        expect_identical(stats, serial);
        EXPECT_GT(es.invalid_frames, 0u) << workers;
    }
}

TEST(EngineRecovery, AllWorkersDeadDegradesToMasterLocal) {
    recovery_fixture f;
    const assessment_stats serial = f.serial_reference();
    const chaos_schedule chaos{{.seed = 51, .crash_rate = 1.0}};

    for (const std::size_t workers : {1u, 2u, 8u}) {
        engine_stats es;
        const assessment_stats stats = f.run_engine(
            {.workers = workers, .batch_rounds = 128, .max_attempts = 3,
             .chaos = &chaos},
            &es);
        expect_identical(stats, serial);
        EXPECT_EQ(es.degraded, es.batches) << workers;
        EXPECT_GT(es.worker_crashes, 0u) << workers;
    }
}

TEST(EngineRecovery, ZeroAttemptsRunsEverythingMasterLocal) {
    recovery_fixture f;
    engine_stats es;
    const assessment_stats stats =
        f.run_engine({.workers = 2, .batch_rounds = 128, .max_attempts = 0}, &es);
    expect_identical(stats, f.serial_reference());
    EXPECT_EQ(es.dispatches, 0u);
    EXPECT_EQ(es.degraded, es.batches);
}

TEST(EngineRecovery, RedispatchMovesBatchToAnotherWorker) {
    recovery_fixture f;
    // With > 1 worker and per-batch failed-worker exclusion, a failed
    // attempt must land on a different worker.
    const chaos_schedule chaos{{.seed = 61, .crash_rate = 0.4}};
    engine_stats es;
    const assessment_stats stats = f.run_engine(
        {.workers = 4, .batch_rounds = 64, .max_attempts = 25, .chaos = &chaos},
        &es);
    expect_identical(stats, f.serial_reference());
    EXPECT_GT(es.redispatches, 0u);
    EXPECT_EQ(es.redispatches, es.retries);  // exclusion => always a new worker
}

// The acceptance criterion: a schedule failing >= 20% of dispatch attempts
// (crash + corrupt + truncate combined) must not change a single count at
// 1, 2, or 8 workers, and the stats must show the recoveries happening.
TEST(EngineRecovery, TwentyPercentFaultScheduleIsBitIdentical) {
    recovery_fixture f;
    const assessment_stats serial = f.serial_reference();
    const assessment_stats fault_free =
        f.run_engine({.workers = 2, .batch_rounds = 64, .max_attempts = 3});
    expect_identical(fault_free, serial);

    const chaos_schedule chaos{{.seed = 0xacce97,
                                .crash_rate = 0.10,
                                .corrupt_rate = 0.06,
                                .truncate_rate = 0.06}};
    for (const std::size_t workers : {1u, 2u, 8u}) {
        engine_stats es;
        const assessment_stats stats = f.run_engine(
            {.workers = workers, .batch_rounds = 64, .max_attempts = 25,
             .chaos = &chaos},
            &es);
        expect_identical(stats, fault_free);
        expect_identical(stats, serial);
        EXPECT_GT(es.failures(), 0u) << workers;
        EXPECT_GT(es.retries + es.degraded, 0u) << workers;
        EXPECT_GE(es.dispatches, es.batches) << workers;
    }
}

TEST(EngineRecovery, StatsAccumulateAcrossAssessCalls) {
    recovery_fixture f;
    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             {.workers = 2, .batch_rounds = 64}};
    (void)engine.assess(sampler, f.app, f.plan, 500);
    const std::uint64_t after_first = engine.stats().batches;
    (void)engine.assess(sampler, f.app, f.plan, 500);
    EXPECT_GT(engine.stats().batches, after_first);
    EXPECT_EQ(engine.stats().worker_failures.size(), 2u);
    EXPECT_GT(engine.stats().bytes_sent, 0u);
    EXPECT_GT(engine.stats().bytes_received, 0u);
}

// CI hook: RECLOUD_CHAOS_SEED reseeds the schedule so nightly runs sweep
// fresh fault patterns; the determinism contract must hold for EVERY seed.
// Unset, a fixed default keeps the test meaningful (and reproducible)
// locally.
TEST(EngineRecovery, HoldsForEnvironmentChosenSeed) {
    std::uint64_t seed = 0xd15ea5e;
    const char* env = std::getenv("RECLOUD_CHAOS_SEED");
    if (env != nullptr && env[0] != '\0') {
        seed = std::strtoull(env, nullptr, 0);
    }
    recovery_fixture f;
    const chaos_schedule chaos{{.seed = seed,
                                .crash_rate = 0.12,
                                .corrupt_rate = 0.08,
                                .truncate_rate = 0.05}};
    engine_stats es;
    const assessment_stats stats = f.run_engine(
        {.workers = 4, .batch_rounds = 64, .max_attempts = 25, .chaos = &chaos},
        &es);
    expect_identical(stats, f.serial_reference());
}

// ---- engine_backend surface ----------------------------------------------

TEST(EngineBackendRecovery, ExposesStatsAndSurvivesChaos) {
    recovery_fixture f;
    const chaos_schedule chaos{{.seed = 71, .crash_rate = 0.25}};
    extended_dagger_sampler sampler{f.registry.probabilities(), k_seed};
    engine_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                           {.workers = 2, .batch_rounds = 64,
                            .max_attempts = 25, .chaos = &chaos}};
    const assessment_stats stats = backend.assess(f.app, f.plan, k_rounds);
    expect_identical(stats, f.serial_reference());
    EXPECT_GT(backend.stats().retries, 0u);
}

}  // namespace
}  // namespace recloud
