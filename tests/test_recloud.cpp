#include "core/recloud.hpp"

#include <gtest/gtest.h>

#include "routing/bfs_reachability.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

recloud_options quick_options() {
    recloud_options o;
    o.assessment_rounds = 2000;
    o.max_iterations = 60;
    o.seed = 3;
    return o;
}

deployment_request quick_request(application app, double desired = 1.0) {
    deployment_request request{std::move(app), desired,
                               std::chrono::milliseconds{1500}};
    return request;
}

TEST(FatTreeInfrastructure, BuildsCompleteBundle) {
    const auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    EXPECT_EQ(infra.topology().hosts.size(), 112u);
    // Registry covers nodes + 5 power supplies.
    EXPECT_EQ(infra.registry().size(), infra.tree().graph().node_count() + 5);
    EXPECT_EQ(infra.power().supplies.size(), 5u);
    // Probabilities assigned (supplies included), external stays at 0.
    EXPECT_GT(infra.registry().probability(infra.power().supplies[0]), 0.0);
    EXPECT_EQ(infra.registry().probability(infra.tree().external()), 0.0);
    // Every switch/host-group has a power fault tree.
    EXPECT_TRUE(infra.forest().has_tree(infra.tree().edge(0, 0)));
    EXPECT_TRUE(infra.forest().has_tree(infra.tree().host(0, 0, 0)));
}

TEST(ReCloud, FindDeploymentReturnsValidPlan) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, quick_options()};
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(4, 5)));
    EXPECT_EQ(response.plan.hosts.size(), 5u);
    EXPECT_NO_THROW(validate_plan(response.plan, application::k_of_n(4, 5),
                                  infra.topology()));
    EXPECT_GT(response.stats.reliability, 0.5);
    EXPECT_GT(response.search.plans_evaluated, 0u);
}

TEST(ReCloud, ModestDesiredReliabilityIsFulfilled) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, quick_options()};
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(1, 3), 0.9));
    EXPECT_TRUE(response.fulfilled);
    EXPECT_GE(response.stats.reliability, 0.9);
}

TEST(ReCloud, ImpossibleRequirementsReportedUnfulfilled) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options = quick_options();
    options.max_iterations = 20;
    re_cloud system{infra, options};
    // R_desired = 1.0 is unattainable with fallible hardware (§4.1 uses this
    // to keep the search running until Tmax).
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(4, 5), 1.0));
    EXPECT_FALSE(response.fulfilled);
    EXPECT_EQ(response.plan.hosts.size(), 5u);  // best effort still returned
}

TEST(ReCloud, AssessGivenPlan) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, quick_options()};
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {infra.tree().host(0, 0, 0), infra.tree().host(3, 1, 1)};
    const assessment_stats stats = system.assess(app, plan);
    EXPECT_EQ(stats.rounds, 2000u);
    EXPECT_GT(stats.reliability, 0.8);
    const assessment_stats more = system.assess(app, plan, 5000);
    EXPECT_EQ(more.rounds, 5000u);
}

TEST(ReCloud, AssessValidatesInputs) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, quick_options()};
    deployment_plan bad;
    bad.hosts = {infra.tree().host(0, 0, 0)};  // size mismatch for 2 replicas
    EXPECT_THROW((void)system.assess(application::k_of_n(1, 2), bad),
                 std::invalid_argument);
}

TEST(ReCloud, MultiObjectivePrefersLightHosts) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options = quick_options();
    options.multi_objective = true;
    options.max_iterations = 150;
    re_cloud system{infra, options};
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(2, 3)));
    // Score must blend reliability and utility: both in (0, 1].
    EXPECT_GT(response.utility, 0.0);
    EXPECT_LE(response.score, 1.0);
    EXPECT_GT(response.score, 0.0);
    // The chosen hosts should be lighter-than-average on balance.
    const double average_load =
        infra.workloads().average(response.plan.hosts);
    EXPECT_LT(average_load, 0.35);
}

TEST(ReCloud, MonteCarloSamplerOptionWorks) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options = quick_options();
    options.sampler = sampler_kind::monte_carlo;
    options.assessment_rounds = 500;
    options.max_iterations = 10;
    re_cloud system{infra, options};
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(1, 2), 0.8));
    EXPECT_TRUE(response.fulfilled);
}

TEST(ReCloud, LayeredApplicationEndToEnd) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, quick_options()};
    const deployment_response response =
        system.find_deployment(quick_request(application::layered(2, 1, 2), 0.9));
    EXPECT_TRUE(response.fulfilled);
    EXPECT_EQ(response.plan.hosts.size(), 4u);
}

TEST(ReCloud, GenericContextWithLeafSpine) {
    // The architecture-agnostic path: leaf-spine + BFS oracle (§3.1).
    const built_topology topo = build_leaf_spine(
        {.spines = 3, .leaves = 6, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    rng random{5};
    assign_paper_probabilities(registry, random);
    bfs_reachability oracle{topo};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(topo)
                                      .registry(registry)
                                      .oracle(oracle)
                                      .freeze();

    recloud_options options = quick_options();
    options.assessment_rounds = 1000;
    options.max_iterations = 30;
    re_cloud system{snapshot, options};
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(1, 3), 0.9));
    EXPECT_TRUE(response.fulfilled);
}

TEST(ReCloud, ContextValidation) {
    EXPECT_THROW(re_cloud(scenario_ptr{}, {}), std::invalid_argument);

    const built_topology topo = build_leaf_spine({});
    component_registry registry{topo.graph};
    bfs_reachability oracle{topo};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(topo)
                                      .registry(registry)
                                      .oracle(oracle)
                                      .freeze();

    recloud_options no_rounds;
    no_rounds.assessment_rounds = 0;
    EXPECT_THROW(re_cloud(snapshot, no_rounds), std::invalid_argument);

    recloud_options multi;
    multi.multi_objective = true;  // but no workloads in the scenario
    EXPECT_THROW(re_cloud(snapshot, multi), std::invalid_argument);

    recloud_options no_chains;
    no_chains.search_chains = 0;
    EXPECT_THROW(re_cloud(snapshot, no_chains), std::invalid_argument);
}

TEST(ReCloud, SymmetrySkipsHappenOnUniformizedFabric) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    // Flatten probabilities per type so symmetry produces equivalences.
    for (component_id id = 0; id < infra.registry().size(); ++id) {
        switch (infra.registry().kind(id)) {
            case component_kind::external:
                break;
            case component_kind::host:
            case component_kind::power_supply:
                infra.registry().set_probability(id, 0.01);
                break;
            default:
                infra.registry().set_probability(id, 0.008);
        }
    }
    recloud_options options = quick_options();
    options.assessment_rounds = 200;
    options.max_iterations = 300;
    re_cloud system{infra, options};
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(4, 5)));
    EXPECT_GT(response.search.symmetric_skips, 0u);
}

TEST(ReCloud, TraceRecordsWhenRequested) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options = quick_options();
    options.record_trace = true;
    re_cloud system{infra, options};
    const deployment_response response =
        system.find_deployment(quick_request(application::k_of_n(2, 3)));
    EXPECT_FALSE(response.search.trace.empty());
}

}  // namespace
}  // namespace recloud
