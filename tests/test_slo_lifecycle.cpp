// SLO-aware request lifecycle (core/run_budget.hpp): the cooperative
// cancellation/deadline token, its no-deadline bit-identity contract across
// every backend x transport x worker count, deterministic iteration cuts,
// anytime results, and clean preemption of in-flight socket dispatches.
#include "core/run_budget.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <memory>
#include <vector>

#include "core/recloud.hpp"
#include "core/scenario.hpp"

namespace recloud {
namespace {

// ---- the token itself ------------------------------------------------------

TEST(RunBudget, DefaultIsUnarmedAndNeverFires) {
    run_budget budget;
    EXPECT_FALSE(budget.cancelled());
    EXPECT_FALSE(budget.has_deadline());
    EXPECT_FALSE(budget.interrupted());
    EXPECT_FALSE(budget.cut_at(0));
    EXPECT_FALSE(budget.cut_at(1u << 30));
    EXPECT_NO_THROW(throw_if_preempted(&budget));
    EXPECT_NO_THROW(throw_if_preempted(nullptr));
}

TEST(RunBudget, CancelInterrupts) {
    run_budget budget;
    budget.cancel();
    EXPECT_TRUE(budget.cancelled());
    EXPECT_TRUE(budget.interrupted());
    EXPECT_THROW(throw_if_preempted(&budget), search_preempted);
}

TEST(RunBudget, PastDeadlineInterrupts) {
    run_budget budget;
    budget.set_deadline_in(std::chrono::nanoseconds{-1});
    EXPECT_TRUE(budget.has_deadline());
    EXPECT_TRUE(budget.interrupted());
    EXPECT_EQ(budget.remaining(), std::chrono::nanoseconds::zero());
    EXPECT_THROW(throw_if_preempted(&budget), search_preempted);
}

TEST(RunBudget, FutureDeadlineDoesNotInterruptYet) {
    run_budget budget;
    budget.set_deadline_in(std::chrono::hours{1});
    EXPECT_TRUE(budget.has_deadline());
    EXPECT_FALSE(budget.interrupted());
    EXPECT_GT(budget.remaining(), std::chrono::nanoseconds::zero());
    budget.clear_deadline();
    EXPECT_FALSE(budget.has_deadline());
    EXPECT_FALSE(budget.interrupted());
}

TEST(RunBudget, IterationCutIsAThreshold) {
    run_budget budget;
    budget.set_iteration_cut(5);
    EXPECT_FALSE(budget.cut_at(4));
    EXPECT_TRUE(budget.cut_at(5));
    EXPECT_TRUE(budget.cut_at(6));
    // The cut alone does not make the token "interrupted": it is polled by
    // the annealing loop against its own counter.
    EXPECT_FALSE(budget.interrupted());
}

TEST(RunBudget, SearchPreemptedIsARuntimeError) {
    const search_preempted error;
    const std::runtime_error& base = error;
    EXPECT_NE(std::string{base.what()}.find("preempted"), std::string::npos);
}

// ---- no-deadline bit-identity across backends/transports/workers -----------

recloud_options small_options(assessment_backend_kind backend,
                              std::size_t threads) {
    recloud_options options;
    options.assessment_rounds = 200;
    options.max_iterations = 20;
    options.deterministic_schedule = true;
    options.backend = backend;
    options.assessment_threads = threads;
    options.assessment_batch_rounds = 64;
    options.seed = 7;
    return options;
}

deployment_request small_request() {
    deployment_request request;
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 2.0;  // unreachable: full budget runs
    request.max_search_time = std::chrono::seconds{30};
    return request;
}

void expect_identical(const deployment_response& a,
                      const deployment_response& b) {
    EXPECT_EQ(a.plan.hosts, b.plan.hosts);
    EXPECT_EQ(a.stats.rounds, b.stats.rounds);
    EXPECT_EQ(a.stats.reliable, b.stats.reliable);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.winning_chain, b.winning_chain);
    EXPECT_EQ(a.search.plans_generated, b.search.plans_generated);
    EXPECT_EQ(a.search.plans_evaluated, b.search.plans_evaluated);
    EXPECT_EQ(a.fulfilled, b.fulfilled);
    EXPECT_EQ(a.outcome, b.outcome);
}

/// An ARMED budget whose deadline/cut never fire must be bit-identical to
/// running with no budget at all: the polls are pure reads.
void check_armed_budget_is_inert(const recloud_options& options) {
    const scenario_ptr snapshot = make_fat_tree_scenario(4);

    re_cloud baseline_system{snapshot, options};
    const deployment_response baseline =
        baseline_system.find_deployment(small_request());

    re_cloud armed_system{snapshot, options};
    deployment_request armed = small_request();
    armed.budget = std::make_shared<run_budget>();
    armed.budget->set_deadline_in(std::chrono::hours{24});
    armed.budget->set_iteration_cut(1u << 30);
    const deployment_response with_budget =
        armed_system.find_deployment(armed);

    expect_identical(baseline, with_budget);
    EXPECT_NE(with_budget.outcome, search_outcome::deadline_exceeded);
}

TEST(SloBitIdentity, SerialBackend) {
    check_armed_budget_is_inert(small_options(assessment_backend_kind::serial, 0));
}

TEST(SloBitIdentity, ParallelBackendTwoWorkers) {
    check_armed_budget_is_inert(
        small_options(assessment_backend_kind::parallel, 2));
}

TEST(SloBitIdentity, ParallelBackendEightWorkers) {
    check_armed_budget_is_inert(
        small_options(assessment_backend_kind::parallel, 8));
}

TEST(SloBitIdentity, EngineLoopbackOneWorker) {
    check_armed_budget_is_inert(small_options(assessment_backend_kind::engine, 1));
}

TEST(SloBitIdentity, EngineLoopbackTwoWorkers) {
    check_armed_budget_is_inert(small_options(assessment_backend_kind::engine, 2));
}

TEST(SloBitIdentity, EngineLoopbackEightWorkers) {
    check_armed_budget_is_inert(small_options(assessment_backend_kind::engine, 8));
}

TEST(SloBitIdentity, MultiChainParallelSearch) {
    recloud_options options = small_options(assessment_backend_kind::serial, 0);
    options.search_chains = 3;
    options.search_threads = 3;
    check_armed_budget_is_inert(options);
}

// ---- deterministic iteration cut -------------------------------------------

TEST(SloDeterministicCut, TrajectoryIsAPrefixAndPureFunctionOfSeed) {
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    recloud_options options = small_options(assessment_backend_kind::serial, 0);
    options.max_iterations = 40;
    options.record_trace = true;

    re_cloud full_system{snapshot, options};
    const deployment_response full =
        full_system.find_deployment(small_request());
    ASSERT_EQ(full.search.plans_generated, 40u);

    const auto run_cut = [&] {
        re_cloud system{snapshot, options};
        deployment_request request = small_request();
        request.budget = std::make_shared<run_budget>();
        request.budget->set_iteration_cut(15);
        return system.find_deployment(request);
    };
    const deployment_response cut = run_cut();
    const deployment_response cut_again = run_cut();

    // Pure function of the seed: two preempted runs are bit-identical.
    expect_identical(cut, cut_again);
    EXPECT_EQ(cut.outcome, search_outcome::deadline_exceeded);
    EXPECT_FALSE(cut.fulfilled);
    EXPECT_EQ(cut.search.plans_generated, 15u);

    // Prefix property: every improvement the cut run saw, the full run saw
    // at the same evaluation index with the same score.
    ASSERT_LE(cut.search.trace.size(), full.search.trace.size());
    for (std::size_t i = 0; i < cut.search.trace.size(); ++i) {
        EXPECT_EQ(cut.search.trace[i].plans_evaluated,
                  full.search.trace[i].plans_evaluated);
        EXPECT_EQ(cut.search.trace[i].best_score,
                  full.search.trace[i].best_score);
        EXPECT_EQ(cut.search.trace[i].best_reliability,
                  full.search.trace[i].best_reliability);
    }
}

// ---- anytime results --------------------------------------------------------

TEST(SloAnytime, CancelMidSearchReturnsBestSoFar) {
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    recloud_options options = small_options(assessment_backend_kind::serial, 0);
    options.max_iterations = 200;
    auto budget = std::make_shared<run_budget>();
    std::size_t events = 0;
    options.observer = [&](const obs::search_iteration_event&) {
        if (++events == 5) {
            budget->cancel();
        }
    };

    re_cloud system{snapshot, options};
    deployment_request request = small_request();
    request.budget = budget;
    const deployment_response response = system.find_deployment(request);

    EXPECT_EQ(response.outcome, search_outcome::deadline_exceeded);
    EXPECT_FALSE(response.fulfilled);
    // The anytime contract: a full, assessed plan comes back anyway...
    EXPECT_EQ(response.plan.hosts.size(), 3u);
    EXPECT_GT(response.stats.rounds, 0u);
    // ...and the search stopped near the cancellation point, not at the
    // iteration budget.
    EXPECT_LT(response.search.plans_generated, 200u);
    // Telapsed never exceeds Tmax even for preempted trajectories (Eq. 6
    // clock unification).
    EXPECT_LE(response.search.elapsed_seconds, 30.0);
}

TEST(SloAnytime, WallClockDeadlinePreemptsTimeDrivenSearch) {
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    recloud_options options;
    options.assessment_rounds = 200;
    options.seed = 3;

    re_cloud system{snapshot, options};
    deployment_request request = small_request();
    request.max_search_time = std::chrono::seconds{20};
    request.budget = std::make_shared<run_budget>();
    request.budget->set_deadline_in(std::chrono::milliseconds{200});
    const auto started = monotonic_clock::now();
    const deployment_response response = system.find_deployment(request);
    const auto elapsed = monotonic_clock::now() - started;

    EXPECT_EQ(response.outcome, search_outcome::deadline_exceeded);
    EXPECT_EQ(response.plan.hosts.size(), 3u);
    // Preempted far before Tmax (generous bound for sanitizer builds).
    EXPECT_LT(elapsed, std::chrono::seconds{15});
    EXPECT_LE(response.search.elapsed_seconds, 20.0);
}

// ---- preemption over the socket transport ----------------------------------

TEST(SocketTransportPreempt, AbortsInFlightDispatchAndStaysReusable) {
    const scenario_ptr snapshot = make_fat_tree_scenario(4);
    recloud_options options = small_options(assessment_backend_kind::engine, 2);
    options.engine_transport = engine_transport_kind::socket;
    options.engine_worker_binary = RECLOUD_WORKER_BIN;
    // Hundreds of 64-round batches per assessment: a 50ms deadline is
    // guaranteed to fire while dispatches are in flight on the workers.
    options.assessment_rounds = 50000;

    // The second request cuts at iteration 0: it preempts deterministically
    // right after a FULL initial assessment — proof the transport survived
    // the first request's mid-dispatch abort with no desync.
    const auto cut_request = [] {
        deployment_request request = small_request();
        request.budget = std::make_shared<run_budget>();
        request.budget->set_iteration_cut(0);
        return request;
    };

    {
        re_cloud system{snapshot, options};

        deployment_request preempted = small_request();
        preempted.budget = std::make_shared<run_budget>();
        preempted.budget->set_deadline_in(std::chrono::milliseconds{50});
        const deployment_response aborted = system.find_deployment(preempted);
        EXPECT_EQ(aborted.outcome, search_outcome::deadline_exceeded);

        const deployment_response reused = system.find_deployment(cut_request());
        re_cloud fresh{snapshot, options};
        const deployment_response expected = fresh.find_deployment(cut_request());
        expect_identical(expected, reused);
        EXPECT_GT(reused.stats.rounds, 0u);
    }
    // No zombie recloud_worker children survive the engines above.
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}

}  // namespace
}  // namespace recloud
