#include "util/stopwatch.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace recloud {
namespace {

TEST(Stopwatch, ElapsedIsMonotone) {
    stopwatch watch;
    const auto first = watch.elapsed();
    const auto second = watch.elapsed();
    EXPECT_GE(second.count(), first.count());
    EXPECT_GE(first.count(), 0);
}

TEST(Stopwatch, MeasuresSleeps) {
    stopwatch watch;
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    EXPECT_GE(watch.elapsed_ms(), 19.0);
    EXPECT_LT(watch.elapsed_seconds(), 5.0);  // sanity upper bound
}

TEST(Stopwatch, ResetRestarts) {
    stopwatch watch;
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    watch.reset();
    EXPECT_LT(watch.elapsed_ms(), 15.0);
}

TEST(Deadline, FreshDeadlineNotExpired) {
    const deadline d{std::chrono::seconds{10}};
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remaining_fraction(), 0.99);
}

TEST(Deadline, ExpiresAfterBudget) {
    const deadline d{std::chrono::milliseconds{10}};
    std::this_thread::sleep_for(std::chrono::milliseconds{25});
    EXPECT_TRUE(d.expired());
    EXPECT_DOUBLE_EQ(d.remaining_fraction(), 0.0);
}

TEST(Deadline, RemainingFractionDecreases) {
    const deadline d{std::chrono::milliseconds{200}};
    const double first = d.remaining_fraction();
    std::this_thread::sleep_for(std::chrono::milliseconds{30});
    const double second = d.remaining_fraction();
    EXPECT_LT(second, first);
    EXPECT_GE(second, 0.0);
    EXPECT_LE(first, 1.0);
}

TEST(Deadline, ZeroBudgetIsImmediatelyExpired) {
    const deadline d{std::chrono::nanoseconds{0}};
    EXPECT_TRUE(d.expired());
    EXPECT_DOUBLE_EQ(d.remaining_fraction(), 0.0);
}

TEST(Deadline, ReportsItsBudget) {
    const deadline d{std::chrono::milliseconds{1500}};
    EXPECT_EQ(d.budget(), std::chrono::nanoseconds{1'500'000'000});
}

}  // namespace
}  // namespace recloud
