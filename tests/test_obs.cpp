// Observability layer (src/obs): metrics registry exactness under
// concurrency, tracer ring semantics and Chrome-trace export, timeline JSONL
// serialization, and the §6 guarantee that turning telemetry on cannot
// change a single assessment bit on any backend.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "assess/backend.hpp"
#include "exec/engine.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

// ---- metrics registry ---------------------------------------------------

TEST(MetricsRegistry, CounterAggregationIsExactAcrossConcurrentWriters) {
    obs::metrics_registry registry;
    registry.set_enabled(true);
    const obs::metric_id hits = registry.counter("test.hits");
    constexpr std::size_t threads = 8;
    constexpr std::uint64_t per_thread = 50'000;
    std::vector<std::thread> writers;
    writers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        writers.emplace_back([&registry, hits] {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                registry.add(hits, 1);
            }
        });
    }
    for (auto& w : writers) {
        w.join();
    }
    // Sharded relaxed slots must still sum exactly: no lost updates, ever.
    EXPECT_EQ(registry.snapshot().value("test.hits"), threads * per_thread);
}

TEST(MetricsRegistry, RetiredThreadShardsKeepTheirCounts) {
    obs::metrics_registry registry;
    registry.set_enabled(true);
    const obs::metric_id id = registry.counter("test.retired");
    std::thread{[&] { registry.add(id, 7); }}.join();
    // The writer thread is gone; its shard's total must survive retirement.
    EXPECT_EQ(registry.snapshot().value("test.retired"), 7u);
}

TEST(MetricsRegistry, DisabledWritesAreDropped) {
    obs::metrics_registry registry;
    const obs::metric_id id = registry.counter("test.off");
    registry.add(id, 5);  // disabled: dropped
    registry.set_enabled(true);
    registry.add(id, 2);
    registry.set_enabled(false);
    registry.add(id, 9);  // dropped again
    EXPECT_EQ(registry.snapshot().value("test.off"), 2u);
}

TEST(MetricsRegistry, GaugesAreLastWriteWinsAndIgnoreEnabled) {
    obs::metrics_registry registry;  // never enabled
    const obs::metric_id gauge = registry.gauge("test.gauge");
    registry.set(gauge, 11);
    registry.set(gauge, 42);  // snapshot-time publishes must not vanish
    EXPECT_EQ(registry.snapshot().value("test.gauge"), 42u);
}

TEST(MetricsRegistry, HistogramBucketsSumMinMaxMean) {
    obs::metrics_registry registry;
    registry.set_enabled(true);
    const obs::metric_id h = registry.histogram("test.hist");
    registry.observe(h, 0);  // bucket 0 = {0}
    registry.observe(h, 1);  // bucket 1 = {1, 2}
    registry.observe(h, 2);
    registry.observe(h, 100);  // bucket floor(log2(101)) = 6
    const obs::telemetry_snapshot snapshot = registry.snapshot();
    const obs::metric_entry* entry = snapshot.find("test.hist");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->kind, obs::metric_kind::histogram);
    EXPECT_EQ(entry->histogram.count, 4u);
    EXPECT_EQ(entry->histogram.sum, 103u);
    EXPECT_EQ(entry->histogram.min, 0u);
    EXPECT_EQ(entry->histogram.max, 100u);
    EXPECT_EQ(entry->histogram.buckets[0], 1u);
    EXPECT_EQ(entry->histogram.buckets[1], 2u);
    EXPECT_EQ(entry->histogram.buckets[6], 1u);
    EXPECT_DOUBLE_EQ(entry->histogram.mean(), 103.0 / 4.0);
}

TEST(MetricsRegistry, RegistrationIsIdempotentAndKindChecked) {
    obs::metrics_registry registry;
    const obs::metric_id a = registry.counter("test.name");
    const obs::metric_id b = registry.counter("test.name");
    EXPECT_EQ(a.raw, b.raw);
    EXPECT_THROW((void)registry.gauge("test.name"), std::invalid_argument);
    EXPECT_THROW((void)registry.histogram("test.name"), std::invalid_argument);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsNames) {
    obs::metrics_registry registry;
    registry.set_enabled(true);
    const obs::metric_id id = registry.counter("test.reset");
    registry.add(id, 3);
    registry.reset();
    const obs::telemetry_snapshot snapshot = registry.snapshot();
    ASSERT_NE(snapshot.find("test.reset"), nullptr);
    EXPECT_EQ(snapshot.value("test.reset"), 0u);
    registry.add(id, 4);  // the handle stays valid across reset
    EXPECT_EQ(registry.snapshot().value("test.reset"), 4u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndMissingNamesReadZero) {
    obs::metrics_registry registry;
    (void)registry.counter("test.b");
    (void)registry.counter("test.a");
    const obs::telemetry_snapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.metrics.size(), 2u);
    EXPECT_EQ(snapshot.metrics[0].name, "test.a");
    EXPECT_EQ(snapshot.metrics[1].name, "test.b");
    EXPECT_EQ(snapshot.find("test.zzz"), nullptr);
    EXPECT_EQ(snapshot.value("test.zzz"), 0u);
}

// ---- tracer -------------------------------------------------------------

TEST(Tracer, NestedSpansExportInCompletionOrder) {
    obs::tracer& tracer = obs::tracer::global();
    tracer.reset();
    tracer.start();
    std::thread{[&tracer] {
        tracer.set_current_thread_name("obs-test");
        obs::scoped_span outer{"outer"};
        { obs::scoped_span inner{"inner"}; }
    }}.join();
    tracer.stop();
    EXPECT_EQ(tracer.captured(), 2u);
    const std::string json = tracer.export_chrome_trace();
    const std::size_t inner_at = json.find("\"name\":\"inner\"");
    const std::size_t outer_at = json.find("\"name\":\"outer\"");
    ASSERT_NE(inner_at, std::string::npos);
    ASSERT_NE(outer_at, std::string::npos);
    // RAII spans close inside-out, and a ring preserves completion order.
    EXPECT_LT(inner_at, outer_at);
    // Thread metadata + build provenance + drop count ride along.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"obs-test\""), std::string::npos);
    EXPECT_NE(json.find("\"build\":{"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
    tracer.reset();
}

TEST(Tracer, FullRingDropsNewestAndCountsIt) {
    obs::tracer& tracer = obs::tracer::global();
    tracer.reset();
    tracer.set_ring_capacity(4);
    tracer.start();
    std::thread{[&tracer] {
        // Fresh thread => fresh ring with the just-set capacity.
        for (int i = 0; i < 10; ++i) {
            tracer.record("tiny", 0, 1);
        }
    }}.join();
    tracer.stop();
    EXPECT_EQ(tracer.captured(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    EXPECT_NE(tracer.export_chrome_trace().find("\"dropped_events\":6"),
              std::string::npos);
    tracer.set_ring_capacity(std::size_t{1} << 15);
    tracer.reset();
}

TEST(Tracer, DisabledSpansRecordNothing) {
    obs::tracer& tracer = obs::tracer::global();
    tracer.reset();
    ASSERT_FALSE(tracer.enabled());
    std::thread{[] { RECLOUD_SPAN("invisible"); }}.join();
    EXPECT_EQ(tracer.captured(), 0u);
}

TEST(Tracer, EnvOverrideParsesTheZeroFamily) {
    ::setenv("RECLOUD_TRACE", "1", 1);
    EXPECT_EQ(obs::trace_env_override(), 1);
    ::setenv("RECLOUD_TRACE", "off", 1);
    EXPECT_EQ(obs::trace_env_override(), 0);
    ::setenv("RECLOUD_TRACE", "0", 1);
    EXPECT_EQ(obs::trace_env_override(), 0);
    ::unsetenv("RECLOUD_TRACE");
    EXPECT_EQ(obs::trace_env_override(), -1);
    ::setenv("RECLOUD_TRACE_PATH", "/tmp/custom.json", 1);
    EXPECT_EQ(obs::trace_env_path("fallback.json"), "/tmp/custom.json");
    ::unsetenv("RECLOUD_TRACE_PATH");
    EXPECT_EQ(obs::trace_env_path("fallback.json"), "fallback.json");
}

// ---- timeline -----------------------------------------------------------

obs::search_iteration_event sample_event(obs::search_event_kind kind) {
    obs::search_iteration_event event;
    event.kind = kind;
    event.iteration = 12;
    event.elapsed_seconds = 0.5;
    event.temperature = 0.9;
    event.candidate_score = 0.93;
    event.candidate_reliability = 0.93;
    event.candidate_ciw = 0.01;
    event.candidate_rounds = 1000;
    event.best_score = 0.95;
    event.plans_evaluated = 9;
    event.cache_hit_rate = 0.75;
    return event;
}

TEST(Timeline, IterationLineCarriesCandidateAndCacheFields) {
    const std::string line = obs::search_timeline::to_json_line(
        sample_event(obs::search_event_kind::accepted));
    EXPECT_NE(line.find("\"type\":\"iteration\""), std::string::npos);
    EXPECT_NE(line.find("\"kind\":\"accepted\""), std::string::npos);
    EXPECT_NE(line.find("\"iteration\":12"), std::string::npos);
    EXPECT_NE(line.find("\"temperature\":0.9"), std::string::npos);
    EXPECT_NE(line.find("\"candidate_reliability\":0.93"), std::string::npos);
    EXPECT_NE(line.find("\"candidate_rounds\":1000"), std::string::npos);
    EXPECT_NE(line.find("\"cache_hit_rate\":0.75"), std::string::npos);
}

TEST(Timeline, SkippedKindsOmitCandidateFields) {
    for (const auto kind : {obs::search_event_kind::symmetric_skip,
                            obs::search_event_kind::filtered,
                            obs::search_event_kind::heartbeat}) {
        const std::string line =
            obs::search_timeline::to_json_line(sample_event(kind));
        EXPECT_EQ(line.find("candidate_"), std::string::npos) << line;
    }
    obs::search_iteration_event unknown_rate =
        sample_event(obs::search_event_kind::rejected);
    unknown_rate.cache_hit_rate = -1.0;
    EXPECT_EQ(obs::search_timeline::to_json_line(unknown_rate)
                  .find("cache_hit_rate"),
              std::string::npos);
}

TEST(Timeline, NonFiniteNumbersBecomeNull) {
    obs::search_iteration_event event =
        sample_event(obs::search_event_kind::rejected);
    event.candidate_ciw = std::numeric_limits<double>::quiet_NaN();
    event.temperature = std::numeric_limits<double>::infinity();
    const std::string line = obs::search_timeline::to_json_line(event);
    EXPECT_NE(line.find("\"candidate_ciw\":null"), std::string::npos);
    EXPECT_NE(line.find("\"temperature\":null"), std::string::npos);
}

TEST(Timeline, SinkWritesBuildLineAndHeartbeats) {
    const std::string path = "obs_timeline_test.jsonl";
    {
        obs::search_timeline timeline{path, std::chrono::milliseconds{1000}};
        obs::search_iteration_event event =
            sample_event(obs::search_event_kind::initial);
        event.elapsed_seconds = 0.2;
        timeline.on_event(event);  // no heartbeat yet
        event.kind = obs::search_event_kind::accepted;
        event.elapsed_seconds = 1.4;  // crosses the 1s heartbeat boundary
        timeline.on_event(event);
        // build + initial + heartbeat + accepted
        EXPECT_EQ(timeline.records(), 4u);
    }
    std::FILE* in = std::fopen(path.c_str(), "r");
    ASSERT_NE(in, nullptr);
    char first_line[512] = {};
    ASSERT_NE(std::fgets(first_line, sizeof(first_line), in), nullptr);
    std::fclose(in);
    std::remove(path.c_str());
    EXPECT_NE(std::string{first_line}.find("\"type\":\"build\""),
              std::string::npos);
    EXPECT_NE(std::string{first_line}.find("\"git\":"), std::string::npos);
}

TEST(Timeline, UnwritablePathThrows) {
    EXPECT_THROW(
        obs::search_timeline("/nonexistent-dir-for-sure/x.jsonl"),
        std::runtime_error);
}

// ---- build info ---------------------------------------------------------

TEST(BuildInfo, JsonAndBannerAreConsistent) {
    const build_info_t& info = build_info();
    ASSERT_NE(info.git_hash, nullptr);
    ASSERT_NE(info.compiler, nullptr);
    const std::string json = build_info_json();
    EXPECT_NE(json.find("\"git\":"), std::string::npos);
    EXPECT_NE(json.find(info.git_hash), std::string::npos);
    EXPECT_NE(build_info_banner().find(info.git_hash), std::string::npos);
}

// ---- §6: telemetry cannot perturb assessments ---------------------------

struct obs_backend_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};

    obs_backend_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, 0.03);
            }
        }
    }

    oracle_factory factory() {
        return [this] { return std::make_unique<bfs_reachability>(topo); };
    }

    deployment_plan plan_for(const application& app) {
        deployment_plan plan;
        for (std::uint32_t i = 0; i < app.total_instances(); ++i) {
            plan.hosts.push_back(topo.hosts[(i * 5) % topo.hosts.size()]);
        }
        return plan;
    }
};

void expect_identical(const assessment_stats& a, const assessment_stats& b) {
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.reliable, b.reliable);
    EXPECT_EQ(a.reliability, b.reliability);
    EXPECT_EQ(a.variance, b.variance);
    EXPECT_EQ(a.ciw95, b.ciw95);
}

TEST(TelemetryEquivalence, StatsBitIdenticalWithTracingOnOrOff) {
    // The CacheEquivalence pattern applied to observability: every backend,
    // several worker counts, metrics + tracing fully on vs fully off — the
    // assessment_stats must not differ in a single bit (§6).
    obs_backend_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    constexpr std::size_t rounds = 2000;

    const auto run_all = [&] {
        std::vector<assessment_stats> all;
        {
            extended_dagger_sampler sampler{f.registry.probabilities(), 51};
            bfs_reachability oracle{f.topo};
            serial_backend backend{f.registry.size(), &f.forest, oracle, sampler};
            all.push_back(backend.assess(app, plan, rounds));
        }
        for (const std::size_t workers : {1u, 2u, 8u}) {
            extended_dagger_sampler sampler{f.registry.probabilities(), 51};
            parallel_backend backend{
                f.registry.size(), &f.forest, f.factory(), sampler,
                {.threads = workers, .batch_rounds = 250}};
            all.push_back(backend.assess(app, plan, rounds));
        }
        {
            extended_dagger_sampler sampler{f.registry.probabilities(), 51};
            engine_backend backend{f.registry.size(), &f.forest, f.factory(),
                                   sampler,
                                   {.workers = 2, .batch_rounds = 200}};
            all.push_back(backend.assess(app, plan, rounds));
        }
        return all;
    };

    obs::metrics_registry::global().set_enabled(false);
    ASSERT_FALSE(obs::tracer::global().enabled());
    const std::vector<assessment_stats> off = run_all();

    obs::metrics_registry::global().set_enabled(true);
    obs::tracer::global().start();
    const std::vector<assessment_stats> on = run_all();
    obs::tracer::global().stop();
    obs::metrics_registry::global().set_enabled(false);

    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        expect_identical(on[i], off[i]);
    }
    // And telemetry actually captured something while on.
    EXPECT_GT(obs::metrics_registry::global().snapshot().value("assess.rounds"),
              0u);
    obs::tracer::global().reset();
    obs::metrics_registry::global().reset();
}

TEST(TelemetryEquivalence, LoopbackHarvestIsANoOpWithEmptyFleetView) {
    // Loopback worker threads write the shared registry directly, so a
    // harvest has nothing to pull: counters must not move and the
    // per-worker fleet view stays empty (DESIGN §12).
    obs_backend_fixture f;
    const application app = application::k_of_n(2, 3);
    const deployment_plan plan = f.plan_for(app);
    obs::metrics_registry::global().reset();
    obs::metrics_registry::global().set_enabled(true);

    extended_dagger_sampler sampler{f.registry.probabilities(), 51};
    engine_backend backend{f.registry.size(), &f.forest, f.factory(), sampler,
                           {.workers = 2, .batch_rounds = 200}};
    (void)backend.assess(app, plan, 2000);
    const std::uint64_t before =
        obs::metrics_registry::global().snapshot().value("assess.rounds");
    EXPECT_EQ(before, 2000u);
    backend.harvest_telemetry();
    EXPECT_EQ(obs::metrics_registry::global().snapshot().value("assess.rounds"),
              before);
    EXPECT_TRUE(backend.fleet_telemetry().workers.empty());

    obs::metrics_registry::global().set_enabled(false);
    obs::metrics_registry::global().reset();
}

}  // namespace
}  // namespace recloud
