#include "faults/fault_tree.hpp"

#include <gtest/gtest.h>

#include <set>

namespace recloud {
namespace {

/// Convenience predicate: leaf fails iff its id is in `failed`.
auto failed_in(const std::set<component_id>& failed) {
    return [&failed](component_id id) { return failed.contains(id); };
}

TEST(FaultTree, LeafEvaluatesItsComponent) {
    fault_tree_forest forest{4};
    const tree_node_id leaf = forest.add_leaf(2);
    EXPECT_TRUE(forest.evaluate(leaf, failed_in({2})));
    EXPECT_FALSE(forest.evaluate(leaf, failed_in({1})));
}

TEST(FaultTree, OrGate) {
    fault_tree_forest forest{4};
    const tree_node_id gate =
        forest.add_or({forest.add_leaf(0), forest.add_leaf(1)});
    EXPECT_FALSE(forest.evaluate(gate, failed_in({})));
    EXPECT_TRUE(forest.evaluate(gate, failed_in({0})));
    EXPECT_TRUE(forest.evaluate(gate, failed_in({1})));
    EXPECT_TRUE(forest.evaluate(gate, failed_in({0, 1})));
}

TEST(FaultTree, AndGate) {
    fault_tree_forest forest{4};
    const tree_node_id gate =
        forest.add_and({forest.add_leaf(0), forest.add_leaf(1)});
    EXPECT_FALSE(forest.evaluate(gate, failed_in({})));
    EXPECT_FALSE(forest.evaluate(gate, failed_in({0})));
    EXPECT_FALSE(forest.evaluate(gate, failed_in({1})));
    EXPECT_TRUE(forest.evaluate(gate, failed_in({0, 1})));
}

TEST(FaultTree, KOfNGate) {
    fault_tree_forest forest{8};
    const tree_node_id gate = forest.add_k_of_n(
        2, {forest.add_leaf(0), forest.add_leaf(1), forest.add_leaf(2)});
    EXPECT_FALSE(forest.evaluate(gate, failed_in({})));
    EXPECT_FALSE(forest.evaluate(gate, failed_in({1})));
    EXPECT_TRUE(forest.evaluate(gate, failed_in({0, 2})));
    EXPECT_TRUE(forest.evaluate(gate, failed_in({0, 1, 2})));
}

TEST(FaultTree, KOfNBoundsChecked) {
    fault_tree_forest forest{4};
    const tree_node_id leaf = forest.add_leaf(0);
    EXPECT_THROW((void)forest.add_k_of_n(0, {leaf}), std::invalid_argument);
    EXPECT_THROW((void)forest.add_k_of_n(2, {leaf}), std::invalid_argument);
}

TEST(FaultTree, EmptyGateRejected) {
    fault_tree_forest forest{4};
    EXPECT_THROW((void)forest.add_or({}), std::invalid_argument);
    EXPECT_THROW((void)forest.add_and({}), std::invalid_argument);
}

TEST(FaultTree, UnknownChildRejected) {
    fault_tree_forest forest{4};
    EXPECT_THROW((void)forest.add_or({99}), std::out_of_range);
}

TEST(FaultTree, Figure5Example) {
    // Host fails = (OS or library) or (power1 AND power2) or
    //              (cooling1 AND cooling2).
    enum : component_id { host = 0, os = 1, lib = 2, p1 = 3, p2 = 4, c1 = 5, c2 = 6 };
    fault_tree_forest forest{7};
    const tree_node_id software =
        forest.add_or({forest.add_leaf(os), forest.add_leaf(lib)});
    const tree_node_id power =
        forest.add_and({forest.add_leaf(p1), forest.add_leaf(p2)});
    const tree_node_id cooling =
        forest.add_and({forest.add_leaf(c1), forest.add_leaf(c2)});
    forest.attach(host, forest.add_or({software, power, cooling}));

    const auto host_fails = [&](const std::set<component_id>& failed) {
        return forest.effective_failed(host, failed.contains(host),
                                       failed_in(failed));
    };
    EXPECT_FALSE(host_fails({}));
    EXPECT_TRUE(host_fails({os}));
    EXPECT_TRUE(host_fails({lib}));
    EXPECT_FALSE(host_fails({p1}));       // one redundant supply down: fine
    EXPECT_TRUE(host_fails({p1, p2}));    // both supplies down
    EXPECT_FALSE(host_fails({c2}));
    EXPECT_TRUE(host_fails({c1, c2}));
    EXPECT_TRUE(host_fails({host}));      // own failure always counts
}

TEST(FaultTree, SharedLeafCorrelatesTwoComponents) {
    // Two hosts share one power supply: its failure fails both.
    enum : component_id { host_a = 0, host_b = 1, supply = 2 };
    fault_tree_forest forest{3};
    forest.attach(host_a, forest.add_leaf(supply));
    forest.attach(host_b, forest.add_leaf(supply));

    const std::set<component_id> failed{supply};
    EXPECT_TRUE(forest.effective_failed(host_a, false, failed_in(failed)));
    EXPECT_TRUE(forest.effective_failed(host_b, false, failed_in(failed)));
}

TEST(FaultTree, AttachTwiceOrsTheRoots) {
    enum : component_id { host = 0, dep_a = 1, dep_b = 2 };
    fault_tree_forest forest{3};
    forest.attach(host, forest.add_leaf(dep_a));
    forest.attach(host, forest.add_leaf(dep_b));
    EXPECT_TRUE(forest.effective_failed(host, false, failed_in({dep_a})));
    EXPECT_TRUE(forest.effective_failed(host, false, failed_in({dep_b})));
    EXPECT_FALSE(forest.effective_failed(host, false, failed_in({})));
}

TEST(FaultTree, NoTreeMeansOwnStateOnly) {
    fault_tree_forest forest{2};
    EXPECT_FALSE(forest.has_tree(0));
    EXPECT_FALSE(forest.effective_failed(0, false, failed_in({1})));
    EXPECT_TRUE(forest.effective_failed(0, true, failed_in({})));
}

TEST(FaultTree, RootOfBeyondRangeIsInvalid) {
    fault_tree_forest forest{2};
    EXPECT_EQ(forest.root_of(100), invalid_tree_node);
}

TEST(FaultTree, AttachGrowsForComponentsAddedLater) {
    fault_tree_forest forest{2};
    forest.attach(10, forest.add_leaf(1));
    EXPECT_TRUE(forest.has_tree(10));
    EXPECT_TRUE(forest.effective_failed(10, false, failed_in({1})));
}

TEST(FaultTree, DependenciesOfDeduplicatesAndSorts) {
    fault_tree_forest forest{4};
    const tree_node_id gate = forest.add_or(
        {forest.add_leaf(3), forest.add_leaf(1), forest.add_leaf(3)});
    forest.attach(0, gate);
    EXPECT_EQ(forest.dependencies_of(0), (std::vector<component_id>{1, 3}));
    EXPECT_TRUE(forest.dependencies_of(2).empty());
}

}  // namespace
}  // namespace recloud
