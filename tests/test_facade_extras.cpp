// Remaining facade surface: custom-k fat-tree infrastructures, the
// symmetry checker with links, and option plumbing details.
#include <gtest/gtest.h>

#include "core/recloud.hpp"
#include "search/symmetry.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

TEST(FacadeExtras, CustomKFatTreeInfrastructure) {
    const auto infra = fat_tree_infrastructure::build(6);
    EXPECT_EQ(infra.tree().k(), 6);
    // k=6: 5 regular pods x 9 hosts.
    EXPECT_EQ(infra.topology().hosts.size(), 45u);
    EXPECT_EQ(infra.power().supplies.size(), 5u);
}

TEST(FacadeExtras, CustomPowerSupplyCount) {
    infrastructure_options options;
    options.power.supply_count = 9;
    const auto infra =
        fat_tree_infrastructure::build(data_center_scale::tiny, options);
    EXPECT_EQ(infra.power().supplies.size(), 9u);
    EXPECT_EQ(infra.registry().size(),
              infra.tree().graph().node_count() + 9);
}

TEST(FacadeExtras, SymmetryChainIncludesAccessLink) {
    // Two identical positions except for the access-link probability must
    // NOT be equivalent when links are modeled.
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 3, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    const link_attachment links = attach_link_components(topo, registry);
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) != component_kind::external) {
            registry.set_probability(id, 0.01);
        }
    }
    const symmetry_checker with_links{topo, registry, nullptr, &links};
    deployment_plan a;
    a.hosts = {topo.hosts[0]};
    deployment_plan b;
    b.hosts = {topo.hosts[2]};
    EXPECT_TRUE(with_links.equivalent(a, b));

    // Degrade b's access link: positions diverge.
    const node_id host_b = topo.hosts[2];
    const component_id uplink = links.component_of_edge[topo.graph.edge_id(
        host_b, rack_of(topo.graph, host_b))];
    registry.set_probability(uplink, 0.2);
    const symmetry_checker degraded{topo, registry, nullptr, &links};
    EXPECT_FALSE(degraded.equivalent(a, b));
}

TEST(FacadeExtras, RecordTraceOffByDefault) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options;
    options.assessment_rounds = 300;
    options.max_iterations = 10;
    re_cloud system{infra, options};
    deployment_request request;
    request.app = application::k_of_n(1, 2);
    request.desired_reliability = 0.5;
    request.max_search_time = std::chrono::seconds{5};
    const deployment_response response = system.find_deployment(request);
    EXPECT_TRUE(response.search.trace.empty());
}

TEST(FacadeExtras, FindDeploymentValidatesApplication) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, {.assessment_rounds = 100, .max_iterations = 5}};
    deployment_request request;  // empty application
    request.max_search_time = std::chrono::seconds{1};
    EXPECT_THROW((void)system.find_deployment(request), std::invalid_argument);
}

}  // namespace
}  // namespace recloud
