#include "app/requirement_eval.hpp"

#include <gtest/gtest.h>

#include "faults/round_state.hpp"
#include "routing/fat_tree_routing.hpp"
#include "topology/fat_tree.hpp"

namespace recloud {
namespace {

/// k=4 fat-tree fixture with helpers to judge a round for a given app/plan.
struct eval_fixture {
    fat_tree ft = fat_tree::build(4);
    round_state rs{ft.graph().node_count(), nullptr};
    fat_tree_routing oracle{ft};

    bool judge(const application& app, const deployment_plan& plan,
               std::vector<component_id> failed) {
        requirement_evaluator evaluator{app, plan};
        rs.begin_round(failed);
        oracle.begin_round(rs);
        return evaluator.reliable_in_round(oracle, rs);
    }
};

TEST(RequirementEval, KOfNHealthyRoundIsReliable) {
    eval_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)};
    EXPECT_TRUE(f.judge(app, plan, {}));
}

TEST(RequirementEval, Figure2Scenario) {
    // N=2, K=1: one host dead, the other reachable -> reliable.
    eval_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)};
    EXPECT_TRUE(f.judge(app, plan, {f.ft.host(0, 0, 0)}));
    // Both dead -> unreliable.
    EXPECT_FALSE(f.judge(app, plan, {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)}));
}

TEST(RequirementEval, KOfNCountsExactThreshold) {
    eval_fixture f;
    const application app = application::k_of_n(2, 3);
    deployment_plan plan;
    plan.hosts = {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0), f.ft.host(2, 0, 0)};
    EXPECT_TRUE(f.judge(app, plan, {}));
    EXPECT_TRUE(f.judge(app, plan, {f.ft.host(0, 0, 0)}));  // 2 alive = K
    EXPECT_FALSE(
        f.judge(app, plan, {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)}));  // 1 < K
}

TEST(RequirementEval, Figure6TwoLayerScenario) {
    // FE (2 instances, K_ext=1) + DB (2 instances, K_from_FE=1).
    eval_fixture f;
    const application app = application::layered(2, 1, 2);
    deployment_plan plan;
    const node_id fe1 = f.ft.host(0, 0, 0);
    const node_id fe2 = f.ft.host(1, 0, 0);
    const node_id db1 = f.ft.host(2, 0, 0);
    const node_id db2 = f.ft.host(2, 1, 0);
    plan.hosts = {fe1, fe2, db1, db2};

    EXPECT_TRUE(f.judge(app, plan, {}));
    // FE1 and DB2 dead, FE2 reaches DB1: still reliable (the figure's case).
    EXPECT_TRUE(f.judge(app, plan, {fe1, db2}));
    // Both FEs dead: frontend requirement fails.
    EXPECT_FALSE(f.judge(app, plan, {fe1, fe2}));
    // Both DBs dead: backend requirement fails even with FEs alive.
    EXPECT_FALSE(f.judge(app, plan, {db1, db2}));
}

TEST(RequirementEval, DbReachableOnlyFromDeadFeDoesNotCount) {
    // The paper requires DBs reachable from *alive* (border-reachable) FEs.
    // Put FE1 and DB1 in the same rack, isolate that rack from the border
    // (kill both its pod's agg switches... in k=4 a pod has 2 aggs).
    eval_fixture f;
    const application app = application::layered(2, 1, 2);
    const node_id fe1 = f.ft.host(0, 0, 0);
    const node_id db1 = f.ft.host(0, 0, 1);  // same rack as fe1
    const node_id fe2 = f.ft.host(1, 0, 0);
    const node_id db2 = f.ft.host(2, 0, 0);
    deployment_plan plan;
    plan.hosts = {fe1, fe2, db1, db2};

    // Kill pod 0's aggs: fe1/db1 can talk to each other (same rack) but are
    // cut off from the border. Kill db2: the only remaining DB is db1, which
    // is reachable only from the border-unreachable fe1 -> unreliable.
    EXPECT_FALSE(f.judge(app, plan,
                         {f.ft.aggregation(0, 0), f.ft.aggregation(0, 1), db2}));
    // Same failure but db2 alive: fe2 reaches db2 -> reliable.
    EXPECT_TRUE(
        f.judge(app, plan, {f.ft.aggregation(0, 0), f.ft.aggregation(0, 1)}));
}

TEST(RequirementEval, ThreeLayerChainPropagates) {
    eval_fixture f;
    const application app = application::layered(3, 1, 1);
    deployment_plan plan;
    plan.hosts = {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0), f.ft.host(2, 0, 0)};
    EXPECT_TRUE(f.judge(app, plan, {}));
    // Killing the middle layer severs the chain.
    EXPECT_FALSE(f.judge(app, plan, {f.ft.host(1, 0, 0)}));
}

TEST(RequirementEval, MeshRequiresMutualReachability) {
    eval_fixture f;
    // 2 cores, no supports, 1-of-1 each.
    const application app = application::microservice(2, 0, 1, 1);
    deployment_plan plan;
    plan.hosts = {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)};
    EXPECT_TRUE(f.judge(app, plan, {}));
    // Kill one core instance: the other survives externally but loses its
    // mesh peer -> unreliable.
    EXPECT_FALSE(f.judge(app, plan, {f.ft.host(0, 0, 0)}));
}

TEST(RequirementEval, MeshWithRedundancyToleratesOneLoss) {
    eval_fixture f;
    // 2 cores with 1-of-2 redundancy each.
    const application app = application::microservice(2, 0, 1, 2);
    deployment_plan plan;
    plan.hosts = {f.ft.host(0, 0, 0), f.ft.host(0, 1, 0),   // core0
                  f.ft.host(1, 0, 0), f.ft.host(1, 1, 0)};  // core1
    EXPECT_TRUE(f.judge(app, plan, {}));
    EXPECT_TRUE(f.judge(app, plan, {f.ft.host(0, 0, 0), f.ft.host(1, 1, 0)}));
    EXPECT_FALSE(f.judge(app, plan, {f.ft.host(0, 0, 0), f.ft.host(0, 1, 0)}));
}

TEST(RequirementEval, SupportOnlyNeedsItsOwnCore) {
    eval_fixture f;
    // 1 core (1-of-1) with 1 support (1-of-1).
    const application app = application::microservice(1, 1, 1, 1);
    deployment_plan plan;
    plan.hosts = {f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)};
    EXPECT_TRUE(f.judge(app, plan, {}));
    // Kill the support's host: unreliable.
    EXPECT_FALSE(f.judge(app, plan, {f.ft.host(1, 0, 0)}));
}

TEST(RequirementEval, FixpointStripsCascades) {
    // layer0 -> layer1 -> layer2, all 1-of-1, chained across pods. Cutting
    // layer1 from the border does NOT matter (only layer0 needs external),
    // but cutting layer1 from layer0 must cascade to layer2.
    eval_fixture f;
    const application app = application::layered(3, 1, 1);
    const node_id l0 = f.ft.host(0, 0, 0);
    const node_id l1 = f.ft.host(1, 0, 0);
    const node_id l2 = f.ft.host(1, 0, 1);  // same rack as l1
    deployment_plan plan;
    plan.hosts = {l0, l1, l2};
    // Isolate pod 1 entirely (both aggs): l1 unreachable from l0, so l2 is
    // unreachable from any functional l1 even though l1<->l2 still works.
    EXPECT_FALSE(
        f.judge(app, plan, {f.ft.aggregation(1, 0), f.ft.aggregation(1, 1)}));
}

}  // namespace
}  // namespace recloud
