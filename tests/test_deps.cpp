#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "deps/hardware_inventory.hpp"
#include "deps/network_deps.hpp"
#include "deps/software_deps.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

struct deps_fixture {
    // Built via a named helper (not a default member initializer with a
    // designated-init temporary) to sidestep a GCC -O2 dangling-pointer
    // false positive.
    static built_topology make_topology() {
        leaf_spine_params params;
        params.spines = 2;
        params.leaves = 4;
        params.hosts_per_leaf = 4;
        params.border_leaves = 1;
        return build_leaf_spine(params);
    }

    built_topology topo = make_topology();
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
};

// ---- hardware inventory ---------------------------------------------------

TEST(HardwareInventory, OneProfilePerHost) {
    deps_fixture f;
    const hardware_inventory inv =
        survey_hardware(f.topo, f.registry, f.forest, {.firmware_versions = 3});
    EXPECT_EQ(inv.profiles.size(), f.topo.hosts.size());
    EXPECT_EQ(inv.firmware_components.size(), 3u);
    for (const auto& profile : inv.profiles) {
        EXPECT_FALSE(profile.cpu_model.empty());
        EXPECT_FALSE(profile.mainboard.empty());
        EXPECT_GE(profile.firmware_version, 0);
        EXPECT_LT(profile.firmware_version, 3);
    }
}

TEST(HardwareInventory, SharedFirmwareCorrelatesHosts) {
    deps_fixture f;
    const hardware_inventory inv =
        survey_hardware(f.topo, f.registry, f.forest, {.firmware_versions = 2});
    // Failing firmware v0 must fail exactly the hosts running it.
    const component_id fw0 = inv.firmware_components[0];
    const auto failed = [&](component_id id) { return id == fw0; };
    for (const auto& profile : inv.profiles) {
        EXPECT_EQ(f.forest.effective_failed(profile.host, false, failed),
                  profile.firmware_version == 0);
    }
}

TEST(HardwareInventory, RegistersFirmwareComponents) {
    deps_fixture f;
    const hardware_inventory inv =
        survey_hardware(f.topo, f.registry, f.forest,
                        {.firmware_versions = 2,
                         .firmware_failure_probability = 0.007});
    for (const component_id fw : inv.firmware_components) {
        EXPECT_EQ(f.registry.kind(fw), component_kind::firmware);
        EXPECT_DOUBLE_EQ(f.registry.probability(fw), 0.007);
    }
}

TEST(HardwareInventory, DeterministicPerSeed) {
    deps_fixture f1;
    deps_fixture f2;
    const hardware_inventory a =
        survey_hardware(f1.topo, f1.registry, f1.forest, {.seed = 9});
    const hardware_inventory b =
        survey_hardware(f2.topo, f2.registry, f2.forest, {.seed = 9});
    for (std::size_t i = 0; i < a.profiles.size(); ++i) {
        EXPECT_EQ(a.profiles[i].firmware_version, b.profiles[i].firmware_version);
        EXPECT_EQ(a.profiles[i].cpu_model, b.profiles[i].cpu_model);
    }
}

// ---- software catalog -------------------------------------------------------

TEST(SoftwareCatalog, DependenciesFormADag) {
    deps_fixture f;
    const software_catalog catalog = generate_software_catalog(f.registry, {});
    for (std::size_t p = 0; p < catalog.depends_on.size(); ++p) {
        for (const std::uint32_t dep : catalog.depends_on[p]) {
            EXPECT_LT(dep, p);  // only earlier packages: acyclic by indexing
        }
    }
}

TEST(SoftwareCatalog, PackageProbabilitiesInCvssRange) {
    deps_fixture f;
    const software_catalog catalog = generate_software_catalog(f.registry, {});
    for (const component_id pkg : catalog.packages) {
        EXPECT_GE(f.registry.probability(pkg), 1e-4);
        EXPECT_LE(f.registry.probability(pkg), 0.05);
        EXPECT_EQ(f.registry.kind(pkg), component_kind::software_package);
    }
}

TEST(SoftwareCatalog, ClosureContainsTopLevelAndTransitiveDeps) {
    deps_fixture f;
    const software_catalog catalog = generate_software_catalog(
        f.registry, {.packages = 30, .seed = 3});
    for (std::uint32_t s = 0; s < catalog.stacks.size(); ++s) {
        const auto closure = stack_closure(catalog, s);
        const std::set<std::uint32_t> closure_set(closure.begin(), closure.end());
        for (const std::uint32_t top : catalog.stacks[s]) {
            EXPECT_TRUE(closure_set.contains(top));
            // Every direct dependency of a closure member is in the closure.
        }
        for (const std::uint32_t member : closure) {
            for (const std::uint32_t dep : catalog.depends_on[member]) {
                EXPECT_TRUE(closure_set.contains(dep));
            }
        }
        EXPECT_TRUE(std::is_sorted(closure.begin(), closure.end()));
    }
}

TEST(SoftwareCatalog, UnknownStackRejected) {
    deps_fixture f;
    const software_catalog catalog = generate_software_catalog(f.registry, {});
    EXPECT_THROW((void)stack_closure(catalog, 999), std::out_of_range);
}

TEST(SoftwareInstall, OsFailureFailsItsHosts) {
    deps_fixture f;
    const software_catalog catalog = generate_software_catalog(
        f.registry, {.os_images = 2, .seed = 5});
    const install_report report = install_software(f.topo, catalog, f.forest);
    const component_id os0 = catalog.os_images[0];
    const auto failed = [&](component_id id) { return id == os0; };
    for (const node_id host : f.topo.hosts) {
        EXPECT_EQ(f.forest.effective_failed(host, false, failed),
                  report.os_of_host[host] == 0);
    }
}

TEST(SoftwareInstall, PackageInClosureFailsHost) {
    deps_fixture f;
    const software_catalog catalog = generate_software_catalog(
        f.registry, {.packages = 20, .seed = 7});
    const install_report report = install_software(f.topo, catalog, f.forest);
    const node_id host = f.topo.hosts[0];
    const auto closure =
        stack_closure(catalog, static_cast<std::uint32_t>(report.stack_of_host[host]));
    ASSERT_FALSE(closure.empty());
    const component_id pkg = catalog.packages[closure.front()];
    EXPECT_TRUE(f.forest.effective_failed(
        host, false, [&](component_id id) { return id == pkg; }));
}

TEST(SoftwareInstall, PackageOutsideClosureDoesNotFailHost) {
    deps_fixture f;
    const software_catalog catalog = generate_software_catalog(
        f.registry, {.packages = 30, .top_level_packages_per_stack = 2, .seed = 11});
    const install_report report = install_software(f.topo, catalog, f.forest);
    const node_id host = f.topo.hosts[0];
    const auto closure =
        stack_closure(catalog, static_cast<std::uint32_t>(report.stack_of_host[host]));
    const std::set<std::uint32_t> closure_set(closure.begin(), closure.end());
    // Find a package outside the closure (very likely to exist).
    for (std::uint32_t p = 0; p < catalog.packages.size(); ++p) {
        if (!closure_set.contains(p)) {
            const component_id pkg = catalog.packages[p];
            EXPECT_FALSE(f.forest.effective_failed(
                host, false, [&](component_id id) { return id == pkg; }));
            return;
        }
    }
    GTEST_SKIP() << "closure covered every package";
}

// ---- network dependencies (NSDMiner) ---------------------------------------

TEST(NetworkDeps, ServicesRegisteredPerCategory) {
    deps_fixture f;
    const network_services services = deploy_network_services(
        f.topo, f.registry,
        {.service_categories = 3, .instances_per_category = 2});
    ASSERT_EQ(services.services.size(), 3u);
    for (const auto& category : services.services) {
        EXPECT_EQ(category.size(), 2u);
        for (const component_id s : category) {
            EXPECT_EQ(f.registry.kind(s), component_kind::network_service);
        }
    }
}

TEST(NetworkDeps, MinerRecoversGroundTruthDespiteNoise) {
    deps_fixture f;
    const network_services services =
        deploy_network_services(f.topo, f.registry, {});
    const auto flows = synthesize_flows(
        f.topo, services, {.flows_per_dependency = 20, .noise_flows = 40});
    // Threshold above the noise level but below real traffic.
    const auto mined = mine_dependencies(flows, 10);

    // Exactly the ground-truth (host, service) pairs must be recovered.
    std::set<std::pair<node_id, component_id>> truth;
    for (const node_id host : f.topo.hosts) {
        const auto& per_category = services.assignment[host];
        for (std::size_t c = 0; c < per_category.size(); ++c) {
            truth.insert({host, services.services[c][per_category[c]]});
        }
    }
    std::set<std::pair<node_id, component_id>> found;
    for (const auto& dep : mined) {
        found.insert({dep.host, dep.service});
    }
    EXPECT_EQ(found, truth);
}

TEST(NetworkDeps, LowThresholdPicksUpNoise) {
    deps_fixture f;
    const network_services services =
        deploy_network_services(f.topo, f.registry, {});
    const auto flows = synthesize_flows(
        f.topo, services, {.flows_per_dependency = 20, .noise_flows = 200});
    const auto strict = mine_dependencies(flows, 10);
    const auto lax = mine_dependencies(flows, 1);
    EXPECT_GT(lax.size(), strict.size());
}

TEST(NetworkDeps, AttachedDependenciesTakeDownHosts) {
    deps_fixture f;
    const network_services services =
        deploy_network_services(f.topo, f.registry, {});
    const auto flows = synthesize_flows(f.topo, services, {});
    const auto mined = mine_dependencies(flows, 10);
    attach_mined_dependencies(mined, f.forest);

    const node_id host = f.topo.hosts[0];
    const component_id dns =
        services.services[0][services.assignment[host][0]];
    EXPECT_TRUE(f.forest.effective_failed(
        host, false, [&](component_id id) { return id == dns; }));
}

TEST(NetworkDeps, MinFlowsValidated) {
    EXPECT_THROW((void)mine_dependencies({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace recloud
