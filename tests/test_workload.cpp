#include "search/workload.hpp"

#include <gtest/gtest.h>

#include "topology/fat_tree.hpp"
#include "util/stats.hpp"

namespace recloud {
namespace {

TEST(Workload, ValuesInUnitInterval) {
    const fat_tree ft = fat_tree::build(8);
    rng random{1};
    const workload_map loads{ft.topology(), random};
    for (const node_id h : ft.topology().hosts) {
        EXPECT_GE(loads.of(h), 0.0);
        EXPECT_LE(loads.of(h), 1.0);
    }
}

TEST(Workload, MatchesPaperDistribution) {
    const fat_tree ft = fat_tree::build(16);  // 960 hosts
    rng random{2};
    const workload_map loads{ft.topology(), random};
    running_stats s;
    for (const node_id h : ft.topology().hosts) {
        s.add(loads.of(h));
    }
    EXPECT_NEAR(s.mean(), 0.2, 0.01);
    EXPECT_NEAR(s.stddev(), 0.05, 0.01);
}

TEST(Workload, NonHostNodesCarryZero) {
    const fat_tree ft = fat_tree::build(8);
    rng random{3};
    const workload_map loads{ft.topology(), random};
    EXPECT_EQ(loads.of(ft.core(0, 0)), 0.0);
    EXPECT_EQ(loads.of(ft.external()), 0.0);
}

TEST(Workload, AverageOfSelection) {
    const fat_tree ft = fat_tree::build(8);
    rng random{4};
    const workload_map loads{ft.topology(), random};
    const std::vector<node_id> hosts{ft.topology().hosts[0],
                                     ft.topology().hosts[1]};
    const double expected = (loads.of(hosts[0]) + loads.of(hosts[1])) / 2.0;
    EXPECT_DOUBLE_EQ(loads.average(hosts), expected);
    EXPECT_EQ(loads.average({}), 0.0);
}

TEST(Workload, RefreshChangesLoads) {
    const fat_tree ft = fat_tree::build(8);
    rng random{5};
    workload_map loads{ft.topology(), random};
    const double before = loads.of(ft.topology().hosts[0]);
    std::vector<double> snapshot;
    for (const node_id h : ft.topology().hosts) {
        snapshot.push_back(loads.of(h));
    }
    loads.refresh(random);
    bool changed = false;
    std::size_t i = 0;
    for (const node_id h : ft.topology().hosts) {
        changed = changed || loads.of(h) != snapshot[i++];
    }
    EXPECT_TRUE(changed);
    (void)before;
}

TEST(Workload, CustomDistributionOptions) {
    const fat_tree ft = fat_tree::build(16);
    rng random{6};
    const workload_map loads{ft.topology(), random,
                             {.mean = 0.7, .stddev = 0.01}};
    running_stats s;
    for (const node_id h : ft.topology().hosts) {
        s.add(loads.of(h));
    }
    EXPECT_NEAR(s.mean(), 0.7, 0.01);
}

}  // namespace
}  // namespace recloud
