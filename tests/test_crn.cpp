// Common-random-numbers behaviour of the re_cloud search (see
// recloud_options::common_random_numbers): candidate plans are compared on
// identical failure sequences, and the winner is re-assessed on a fresh
// stream to strip optimization bias.
#include <gtest/gtest.h>

#include "core/recloud.hpp"

namespace recloud {
namespace {

recloud_options base_options() {
    recloud_options o;
    o.assessment_rounds = 1500;
    o.max_iterations = 40;
    o.seed = 9;
    return o;
}

deployment_request request_for(application app) {
    deployment_request r{std::move(app), 1.0, std::chrono::seconds{20}};
    return r;
}

TEST(CommonRandomNumbers, SearchIsDeterministicUnderIterationBudget) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    const auto run = [&] {
        re_cloud system{infra, base_options()};
        return system.find_deployment(request_for(application::k_of_n(2, 3)));
    };
    const deployment_response a = run();
    const deployment_response b = run();
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.stats.reliability, b.stats.reliability);
    EXPECT_EQ(a.search.plans_evaluated, b.search.plans_evaluated);
}

TEST(CommonRandomNumbers, RepeatedEvaluationOfSamePlanIsIdentical) {
    // Under CRN the same plan must always score identically within one
    // search — otherwise the annealing walk would oscillate on noise.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options = base_options();
    re_cloud system{infra, options};
    // Evaluate through the private path indirectly: two assessments via
    // the public assess() continue the stream (fresh randomness)...
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {infra.tree().host(0, 0, 0), infra.tree().host(2, 1, 1)};
    const assessment_stats first = system.assess(app, plan, 4000);
    const assessment_stats second = system.assess(app, plan, 4000);
    // ...so they are allowed to differ (and virtually always do in the
    // third decimal); this documents that assess() is NOT the CRN path.
    EXPECT_EQ(first.rounds, second.rounds);
}

TEST(CommonRandomNumbers, DisabledModeStillFindsValidPlans) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options = base_options();
    options.common_random_numbers = false;
    re_cloud system{infra, options};
    const deployment_response response =
        system.find_deployment(request_for(application::k_of_n(2, 3)));
    EXPECT_EQ(response.plan.hosts.size(), 3u);
    EXPECT_GT(response.stats.reliability, 0.5);
}

TEST(CommonRandomNumbers, FulfilledRequiresUnbiasedConfirmation) {
    // A target placed just at the achievable level: fulfilled may be true
    // or false depending on the draw, but if it is true, the reported
    // (fresh-stream) reliability must itself meet the target — i.e. the
    // flag is consistent with the unbiased estimate, not the CRN one.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, base_options()};
    deployment_request request = request_for(application::k_of_n(1, 3));
    request.desired_reliability = 0.95;
    const deployment_response response = system.find_deployment(request);
    if (response.fulfilled) {
        EXPECT_GE(response.stats.reliability, request.desired_reliability);
    }
}

}  // namespace
}  // namespace recloud
