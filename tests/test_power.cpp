#include "topology/power.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topology/fat_tree.hpp"

namespace recloud {
namespace {

struct power_fixture {
    fat_tree ft = fat_tree::build(8);
    component_registry registry{ft.graph()};
    fault_tree_forest forest{ft.graph().node_count()};
};

TEST(Power, CreatesRequestedSupplies) {
    power_fixture f;
    const power_assignment pa = attach_power_supplies(
        f.ft.topology(), f.registry, f.forest, {.supply_count = 5});
    EXPECT_EQ(pa.supplies.size(), 5u);
    for (const component_id s : pa.supplies) {
        EXPECT_EQ(f.registry.kind(s), component_kind::power_supply);
    }
    EXPECT_EQ(f.registry.size(), f.ft.graph().node_count() + 5);
}

TEST(Power, EverySwitchHasASupply) {
    power_fixture f;
    const power_assignment pa =
        attach_power_supplies(f.ft.topology(), f.registry, f.forest, {});
    for (node_id id = 0; id < f.ft.graph().node_count(); ++id) {
        if (is_switch(f.ft.graph().kind(id))) {
            ASSERT_EQ(pa.supplies_of_node[id].size(), 1u);
        }
    }
}

TEST(Power, HostGroupsShareTheirEdgeGroupSupply) {
    power_fixture f;
    const power_assignment pa =
        attach_power_supplies(f.ft.topology(), f.registry, f.forest, {});
    // All hosts under one edge switch share one supply.
    for (int p = 0; p < f.ft.pod_count(); ++p) {
        for (int e = 0; e < f.ft.group_width(); ++e) {
            std::set<component_id> group_supplies;
            for (int h = 0; h < f.ft.hosts_per_edge(); ++h) {
                const auto& supplies = pa.supplies_of_node[f.ft.host(p, e, h)];
                ASSERT_EQ(supplies.size(), 1u);
                group_supplies.insert(supplies.front());
            }
            EXPECT_EQ(group_supplies.size(), 1u);
        }
    }
}

TEST(Power, RoundRobinUsesAllSupplies) {
    power_fixture f;
    const power_assignment pa = attach_power_supplies(
        f.ft.topology(), f.registry, f.forest, {.supply_count = 5});
    std::set<component_id> used;
    for (const auto& supplies : pa.supplies_of_node) {
        used.insert(supplies.begin(), supplies.end());
    }
    EXPECT_EQ(used.size(), 5u);
}

TEST(Power, AdjacentSwitchesGetDifferentSupplies) {
    power_fixture f;
    const power_assignment pa = attach_power_supplies(
        f.ft.topology(), f.registry, f.forest, {.supply_count = 5});
    // Round-robin: consecutive switch ids use consecutive supplies.
    std::vector<node_id> switches;
    for (node_id id = 0; id < f.ft.graph().node_count(); ++id) {
        if (is_switch(f.ft.graph().kind(id))) {
            switches.push_back(id);
        }
    }
    for (std::size_t i = 0; i + 1 < std::min<std::size_t>(switches.size(), 5); ++i) {
        EXPECT_NE(pa.supplies_of_node[switches[i]].front(),
                  pa.supplies_of_node[switches[i + 1]].front());
    }
}

TEST(Power, SupplyFailureFailsItsDependents) {
    power_fixture f;
    const power_assignment pa =
        attach_power_supplies(f.ft.topology(), f.registry, f.forest, {});
    const node_id host = f.ft.host(0, 0, 0);
    const component_id supply = pa.supplies_of_node[host].front();
    const auto failed = [&](component_id id) { return id == supply; };
    EXPECT_TRUE(f.forest.effective_failed(host, false, failed));
    // A host on a different supply is unaffected.
    node_id other = invalid_node;
    for (const node_id h : f.ft.topology().hosts) {
        if (pa.supplies_of_node[h].front() != supply) {
            other = h;
            break;
        }
    }
    ASSERT_NE(other, invalid_node);
    EXPECT_FALSE(f.forest.effective_failed(other, false, failed));
}

TEST(Power, RedundantSuppliesNeedAllToFail) {
    power_fixture f;
    const power_assignment pa = attach_power_supplies(
        f.ft.topology(), f.registry, f.forest,
        {.supply_count = 5, .redundancy = 2});
    const node_id host = f.ft.host(1, 2, 3);
    ASSERT_EQ(pa.supplies_of_node[host].size(), 2u);
    const component_id s0 = pa.supplies_of_node[host][0];
    const component_id s1 = pa.supplies_of_node[host][1];
    EXPECT_NE(s0, s1);
    EXPECT_FALSE(f.forest.effective_failed(
        host, false, [&](component_id id) { return id == s0; }));
    EXPECT_TRUE(f.forest.effective_failed(
        host, false, [&](component_id id) { return id == s0 || id == s1; }));
}

TEST(Power, InvalidOptionsRejected) {
    power_fixture f;
    EXPECT_THROW((void)attach_power_supplies(f.ft.topology(), f.registry,
                                             f.forest, {.supply_count = 0}),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)attach_power_supplies(f.ft.topology(), f.registry, f.forest,
                                    {.supply_count = 2, .redundancy = 3}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)attach_power_supplies(f.ft.topology(), f.registry, f.forest,
                                    {.supply_count = 2, .redundancy = 0}),
        std::invalid_argument);
}

}  // namespace
}  // namespace recloud
