#include "exec/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "assess/assessor.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

// ---- wire format ----------------------------------------------------------

TEST(Wire, ApplicationRoundtrip) {
    const application app = application::microservice(2, 1, 1, 3);
    byte_writer w;
    wire::encode_application(w, app);
    byte_reader r{w.bytes()};
    const application decoded = wire::decode_application(r);
    ASSERT_EQ(decoded.components().size(), app.components().size());
    for (std::size_t i = 0; i < app.components().size(); ++i) {
        EXPECT_EQ(decoded.components()[i].name, app.components()[i].name);
        EXPECT_EQ(decoded.components()[i].replicas, app.components()[i].replicas);
    }
    ASSERT_EQ(decoded.requirements().size(), app.requirements().size());
    for (std::size_t i = 0; i < app.requirements().size(); ++i) {
        EXPECT_EQ(decoded.requirements()[i].target, app.requirements()[i].target);
        EXPECT_EQ(decoded.requirements()[i].source, app.requirements()[i].source);
        EXPECT_EQ(decoded.requirements()[i].min_reachable,
                  app.requirements()[i].min_reachable);
    }
}

TEST(Wire, PlanRoundtrip) {
    deployment_plan plan;
    plan.hosts = {3, 1, 4, 1000000};
    byte_writer w;
    wire::encode_plan(w, plan);
    byte_reader r{w.bytes()};
    EXPECT_EQ(wire::decode_plan(r), plan);
}

TEST(Wire, RoundBatchRoundtrip) {
    const std::vector<std::vector<component_id>> rounds{
        {}, {1, 2, 3}, {7}, {}, {100, 5}};
    byte_writer w;
    wire::encode_round_batch(w, rounds);
    byte_reader r{w.bytes()};
    EXPECT_EQ(wire::decode_round_batch(r), rounds);
}

TEST(Wire, BatchResultRoundtrip) {
    byte_writer w;
    wire::encode_batch_result(w, {.rounds = 1000, .reliable = 993});
    byte_reader r{w.bytes()};
    const wire::batch_result result = wire::decode_batch_result(r);
    EXPECT_EQ(result.rounds, 1000u);
    EXPECT_EQ(result.reliable, 993u);
}

TEST(Wire, CorruptApplicationRejected) {
    byte_writer w;
    w.write_varint(1);        // one component
    w.write_string("c");
    w.write_varint(0);        // zero replicas -> add_component throws
    byte_reader r{w.bytes()};
    EXPECT_THROW((void)wire::decode_application(r), std::invalid_argument);
}

// ---- wire fuzzing ---------------------------------------------------------
// Every decoder must survive arbitrary corruption of its input: a truncated
// buffer is always rejected (every encoding is consumed in full, so any
// strict prefix leaves a read short), and a bit-flipped buffer either
// throws a typed error or decodes into SOME value — never crashes, loops,
// or allocates absurdly. End-to-end integrity is the frame layer's job
// (see test_serialize.cpp); these tests pin down the payload decoders.

/// Runs `decode`; only the typed rejection errors may escape — malformed
/// bytes (serialize_error) or a decoded value failing semantic validation
/// (std::invalid_argument / std::out_of_range).
template <typename Fn>
void expect_graceful(Fn&& decode) {
    try {
        decode();
    } catch (const serialize_error&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
}

/// Like expect_graceful, but the decode must not succeed either.
template <typename Fn>
void expect_rejected(Fn&& decode, std::size_t at) {
    try {
        decode();
        ADD_FAILURE() << "decoder accepted a truncated buffer cut at byte "
                      << at;
    } catch (const serialize_error&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
}

template <typename Fn>
void fuzz_decoder(const std::vector<std::byte>& valid, Fn&& decode) {
    // Truncations: every strict prefix must be rejected.
    for (std::size_t keep = 0; keep < valid.size(); ++keep) {
        const std::span<const std::byte> cut{valid.data(), keep};
        expect_rejected([&] { decode(cut); }, keep);
    }
    // Bit flips: every single-bit corruption must be handled gracefully.
    for (std::size_t i = 0; i < valid.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::byte> flipped = valid;
            flipped[i] ^= static_cast<std::byte>(1u << bit);
            expect_graceful([&] { decode(flipped); });
        }
    }
}

TEST(WireFuzz, ApplicationSurvivesCorruption) {
    byte_writer w;
    wire::encode_application(w, application::microservice(2, 1, 1, 3));
    fuzz_decoder(w.bytes(), [](std::span<const std::byte> bytes) {
        byte_reader r{bytes};
        (void)wire::decode_application(r);
    });
}

TEST(WireFuzz, PlanSurvivesCorruption) {
    deployment_plan plan;
    plan.hosts = {3, 1, 4, 159, 2653};
    byte_writer w;
    wire::encode_plan(w, plan);
    fuzz_decoder(w.bytes(), [](std::span<const std::byte> bytes) {
        byte_reader r{bytes};
        (void)wire::decode_plan(r);
    });
}

TEST(WireFuzz, RoundBatchSurvivesCorruption) {
    byte_writer w;
    wire::encode_round_batch(w, {{1, 2, 3}, {}, {200, 5}, {7}});
    fuzz_decoder(w.bytes(), [](std::span<const std::byte> bytes) {
        byte_reader r{bytes};
        (void)wire::decode_round_batch(r);
    });
}

TEST(WireFuzz, BatchResultSurvivesCorruption) {
    byte_writer w;
    wire::encode_batch_result(w, {.rounds = 100000, .reliable = 99321});
    fuzz_decoder(w.bytes(), [](std::span<const std::byte> bytes) {
        byte_reader r{bytes};
        (void)wire::decode_batch_result(r);
    });
}

// ---- engine ----------------------------------------------------------------

struct engine_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};

    engine_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, 0.03);
            }
        }
    }

    oracle_factory factory() {
        return [this] { return std::make_unique<bfs_reachability>(topo); };
    }
};

TEST(Engine, MatchesSerialAssessmentExactly) {
    // Same sampler seed => the engine must judge the same rounds and return
    // the identical reliable count, regardless of batching.
    engine_fixture f;
    const application app = application::k_of_n(2, 3);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[0], f.topo.hosts[5], f.topo.hosts[10]};

    extended_dagger_sampler serial_sampler{f.registry.probabilities(), 101};
    round_state rs{f.registry.size(), &f.forest};
    bfs_reachability oracle{f.topo};
    const assessment_stats serial =
        assess_deployment(serial_sampler, rs, oracle, app, plan, 4000);

    extended_dagger_sampler engine_sampler{f.registry.probabilities(), 101};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             {.workers = 3, .batch_rounds = 128}};
    const assessment_stats parallel =
        engine.assess(engine_sampler, app, plan, 4000);

    EXPECT_EQ(parallel.rounds, serial.rounds);
    EXPECT_EQ(parallel.reliable, serial.reliable);
}

TEST(Engine, WorkerCountDoesNotChangeResults) {
    engine_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[1], f.topo.hosts[9]};

    std::vector<std::size_t> reliable_counts;
    for (const std::size_t workers : {1u, 2u, 4u}) {
        extended_dagger_sampler sampler{f.registry.probabilities(), 55};
        assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                                 {.workers = workers, .batch_rounds = 100}};
        reliable_counts.push_back(
            engine.assess(sampler, app, plan, 2000).reliable);
    }
    EXPECT_EQ(reliable_counts[0], reliable_counts[1]);
    EXPECT_EQ(reliable_counts[1], reliable_counts[2]);
}

TEST(Engine, BatchSizeDoesNotChangeResults) {
    engine_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[2], f.topo.hosts[12]};

    std::vector<std::size_t> reliable_counts;
    for (const std::size_t batch : {1u, 7u, 500u, 10000u}) {
        extended_dagger_sampler sampler{f.registry.probabilities(), 77};
        assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                                 {.workers = 2, .batch_rounds = batch}};
        reliable_counts.push_back(
            engine.assess(sampler, app, plan, 1500).reliable);
    }
    for (std::size_t i = 1; i < reliable_counts.size(); ++i) {
        EXPECT_EQ(reliable_counts[i], reliable_counts[0]);
    }
}

TEST(Engine, HandlesRoundCountNotDivisibleByBatch) {
    engine_fixture f;
    const application app = application::k_of_n(1, 1);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[0]};
    extended_dagger_sampler sampler{f.registry.probabilities(), 3};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             {.workers = 2, .batch_rounds = 64}};
    const assessment_stats stats = engine.assess(sampler, app, plan, 1000);
    EXPECT_EQ(stats.rounds, 1000u);
}

TEST(Engine, ZeroRounds) {
    engine_fixture f;
    const application app = application::k_of_n(1, 1);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[0]};
    extended_dagger_sampler sampler{f.registry.probabilities(), 3};
    assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                             {.workers = 2, .batch_rounds = 64}};
    const assessment_stats stats = engine.assess(sampler, app, plan, 0);
    EXPECT_EQ(stats.rounds, 0u);
}

TEST(Engine, ReportsWorkerCount) {
    engine_fixture f;
    const assessment_engine engine{f.registry.size(), &f.forest, f.factory(),
                                   {.workers = 3, .batch_rounds = 10}};
    EXPECT_EQ(engine.workers(), 3u);
}

}  // namespace
}  // namespace recloud
