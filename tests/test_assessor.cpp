#include "assess/assessor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "assess/exact.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

/// Small leaf-spine fixture where exact reliability is computable, used to
/// validate both samplers end-to-end through the full assessment pipeline.
struct assess_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 3, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    bfs_reachability oracle{topo};

    assess_fixture() {
        // Heterogeneous, moderately large probabilities so 2*10^4 rounds
        // give a tight estimate and exact enumeration stays cheap.
        double p = 0.02;
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) == component_kind::external) {
                continue;
            }
            registry.set_probability(id, p);
            p = p >= 0.08 ? 0.02 : p + 0.01;
        }
    }
};

enum class kind { monte_carlo, extended_dagger };

class AssessorVsExact
    : public ::testing::TestWithParam<std::tuple<kind, int, int>> {};

TEST_P(AssessorVsExact, SampledScoreIsWithinErrorBound) {
    const auto [sampler_kind, k, n] = GetParam();
    assess_fixture f;
    const application app = application::k_of_n(k, n);
    deployment_plan plan;
    for (int i = 0; i < n; ++i) {
        plan.hosts.push_back(f.topo.hosts[i]);
    }
    const double truth =
        exact_reliability(f.registry, &f.forest, f.oracle, app, plan);

    std::unique_ptr<failure_sampler> sampler;
    if (sampler_kind == kind::monte_carlo) {
        sampler = std::make_unique<monte_carlo_sampler>(
            f.registry.probabilities(), 77);
    } else {
        sampler = std::make_unique<extended_dagger_sampler>(
            f.registry.probabilities(), 77);
    }
    round_state rs{f.registry.size(), &f.forest};
    const assessment_stats stats = assess_deployment(
        *sampler, rs, f.oracle, app, plan, 20000);

    // The estimate must fall within ~1.5x the reported 95% interval of the
    // ground truth (allowing slack for the 5% miss probability).
    EXPECT_NEAR(stats.reliability, truth, 1.5 * stats.ciw95 + 1e-3)
        << "truth=" << truth;
    EXPECT_GT(stats.ciw95, 0.0);
    EXPECT_EQ(stats.rounds, 20000u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AssessorVsExact,
    ::testing::Combine(::testing::Values(kind::monte_carlo,
                                         kind::extended_dagger),
                       ::testing::Values(1, 2),  // K
                       ::testing::Values(2, 3)),  // N
    [](const auto& info) {
        // NOTE: no structured bindings here — the top-level commas would
        // split the INSTANTIATE_TEST_SUITE_P macro arguments.
        const kind s = std::get<0>(info.param);
        return std::string(s == kind::monte_carlo ? "mc" : "dagger") + "_k" +
               std::to_string(std::get<1>(info.param)) + "of" +
               std::to_string(std::get<2>(info.param));
    });

TEST(Assessor, ReusableAssessorMatchesFreeFunction) {
    assess_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[0], f.topo.hosts[3]};

    extended_dagger_sampler s1{f.registry.probabilities(), 5};
    round_state rs{f.registry.size(), &f.forest};
    const assessment_stats direct =
        assess_deployment(s1, rs, f.oracle, app, plan, 5000);

    extended_dagger_sampler s2{f.registry.probabilities(), 5};
    reliability_assessor assessor{f.registry.size(), &f.forest, f.oracle, s2};
    const assessment_stats reused = assessor.assess(app, plan, 5000);

    EXPECT_EQ(direct.reliable, reused.reliable);
    EXPECT_EQ(direct.rounds, reused.rounds);
}

TEST(Assessor, DeterministicForSameSeed) {
    assess_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[1], f.topo.hosts[4]};

    const auto run = [&] {
        extended_dagger_sampler sampler{f.registry.probabilities(), 123};
        round_state rs{f.registry.size(), &f.forest};
        return assess_deployment(sampler, rs, f.oracle, app, plan, 3000)
            .reliability;
    };
    EXPECT_EQ(run(), run());
}

TEST(Assessor, MorePlacementDiversityIsMoreReliable) {
    // Co-located instances (same rack) vs spread instances: the spread plan
    // must assess at least as reliable — the core premise of the paper.
    assess_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan colocated;
    colocated.hosts = {f.topo.hosts[0], f.topo.hosts[1]};  // same leaf
    deployment_plan spread;
    spread.hosts = {f.topo.hosts[0], f.topo.hosts[4]};  // different leaves

    extended_dagger_sampler sampler{f.registry.probabilities(), 9};
    reliability_assessor assessor{f.registry.size(), &f.forest, f.oracle, sampler};
    const double r_colocated = assessor.assess(app, colocated, 30000).reliability;
    const double r_spread = assessor.assess(app, spread, 30000).reliability;
    EXPECT_GE(r_spread + 0.002, r_colocated);  // allow sampling noise

    const double truth_colocated =
        exact_reliability(f.registry, &f.forest, f.oracle, app, colocated);
    const double truth_spread =
        exact_reliability(f.registry, &f.forest, f.oracle, app, spread);
    EXPECT_GT(truth_spread, truth_colocated);
}

TEST(Assessor, ZeroRoundsYieldsEmptyStats) {
    assess_fixture f;
    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {f.topo.hosts[0], f.topo.hosts[2]};
    extended_dagger_sampler sampler{f.registry.probabilities(), 3};
    round_state rs{f.registry.size(), &f.forest};
    const assessment_stats stats =
        assess_deployment(sampler, rs, f.oracle, app, plan, 0);
    EXPECT_EQ(stats.rounds, 0u);
    EXPECT_EQ(stats.reliability, 0.0);
}

}  // namespace
}  // namespace recloud
