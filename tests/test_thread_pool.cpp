#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace recloud {
namespace {

/// OS-reported name of the thread executing the task, "" off Linux.
std::string current_os_thread_name() {
#if defined(__linux__)
    char buffer[16] = {};
    pthread_getname_np(pthread_self(), buffer, sizeof(buffer));
    return buffer;
#else
    return "";
#endif
}

/// Collects the distinct OS names of every worker by parking all of them on
/// a barrier-ish set of tasks.
std::set<std::string> worker_names(thread_pool& pool) {
    std::mutex mutex;
    std::set<std::string> names;
    std::atomic<std::size_t> arrived{0};
    std::vector<std::future<void>> futures;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        futures.push_back(pool.submit([&] {
            {
                const std::lock_guard lock{mutex};
                names.insert(current_os_thread_name());
            }
            ++arrived;
            // Hold until every worker has reported (so one worker cannot
            // serve two tasks and hide another worker's name). Bounded wait.
            for (int spin = 0; spin < 20000 && arrived < pool.size(); ++spin) {
                std::this_thread::sleep_for(std::chrono::microseconds{50});
            }
        }));
    }
    for (auto& f : futures) {
        f.get();
    }
    return names;
}

TEST(ThreadPool, RejectsZeroThreads) {
    EXPECT_THROW(thread_pool{0}, std::invalid_argument);
}

TEST(ThreadPool, ReportsSize) {
    thread_pool pool{3};
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsResult) {
    thread_pool pool{2};
    auto future = pool.submit([] { return 21 * 2; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    thread_pool pool{4};
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) {
        f.get();
    }
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
    thread_pool pool{1};
    auto future = pool.submit([]() -> int {
        throw std::runtime_error{"boom"};
    });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    thread_pool pool{4};
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForCoversCountSmallerThanWorkers) {
    thread_pool pool{8};
    std::vector<std::atomic<int>> hits(3);
    pool.parallel_for(3, [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForCoversCountNotDivisibleByChunks) {
    // 4 workers -> up to 16 chunks; 1003 indices force uneven chunk sizes.
    thread_pool pool{4};
    std::vector<std::atomic<int>> hits(1003);
    pool.parallel_for(1003, [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForZeroCountIsANoOp) {
    thread_pool pool{2};
    pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForChunksWorkIntoFewTasks) {
    // The chunked implementation enqueues at most workers x 4 tasks, each
    // covering a contiguous index range — not one task per index. Each task
    // appears in some thread's execution order as one maximal ascending
    // run of consecutive indices, so counting those runs counts the tasks.
    thread_pool pool{2};
    std::mutex mutex;
    std::map<std::thread::id, std::vector<std::size_t>> per_thread;
    pool.parallel_for(1000, [&](std::size_t i) {
        const std::lock_guard lock{mutex};
        per_thread[std::this_thread::get_id()].push_back(i);
    });
    std::size_t runs = 0;
    std::size_t total = 0;
    for (const auto& [thread, indices] : per_thread) {
        total += indices.size();
        for (std::size_t k = 0; k < indices.size(); ++k) {
            if (k == 0 || indices[k] != indices[k - 1] + 1) {
                ++runs;
            }
        }
    }
    EXPECT_EQ(total, 1000u);
    EXPECT_LE(runs, pool.size() * 4);
}

TEST(ThreadPool, ParallelForPropagatesException) {
    thread_pool pool{2};
    EXPECT_THROW(pool.parallel_for(10,
                                   [](std::size_t i) {
                                       if (i == 7) {
                                           throw std::runtime_error{"bad index"};
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> counter{0};
    {
        thread_pool pool{2};
        for (int i = 0; i < 100; ++i) {
            (void)pool.submit([&counter] {
                std::this_thread::sleep_for(std::chrono::microseconds{100});
                ++counter;
            });
        }
    }  // destructor joins after draining
    EXPECT_EQ(counter.load(), 100);
}

#if defined(__linux__)
TEST(ThreadPool, WorkersCarryOsNames) {
    thread_pool pool{3};
    const std::set<std::string> names = worker_names(pool);
    EXPECT_EQ(names.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(names.count("recloud-wkr-" + std::to_string(i)))
            << "missing worker " << i;
    }
}

TEST(ThreadPool, CustomPrefixIsTruncatedToOsLimit) {
    // pthread names cap at 15 chars + NUL; the pool must truncate, not fail.
    thread_pool pool{1, "a-very-long-prefix"};
    const std::set<std::string> names = worker_names(pool);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(*names.begin(), std::string{"a-very-long-prefix-0"}.substr(0, 15));
}

TEST(ThreadPool, NamesSurvivePoolRestarts) {
    // Destroying and recreating a pool must produce freshly-named workers
    // (stale names from dead threads cannot leak into the new pool).
    for (int restart = 0; restart < 3; ++restart) {
        thread_pool pool{2};
        const std::set<std::string> names = worker_names(pool);
        EXPECT_EQ(names.size(), 2u) << "restart " << restart;
        EXPECT_TRUE(names.count("recloud-wkr-0")) << "restart " << restart;
        EXPECT_TRUE(names.count("recloud-wkr-1")) << "restart " << restart;
    }
}
#endif

TEST(ThreadPool, TasksRunConcurrently) {
    thread_pool pool{2};
    std::atomic<bool> first_running{false};
    std::atomic<bool> second_observed_first{false};
    auto f1 = pool.submit([&] {
        first_running = true;
        // Hold the thread until the other task observes us (bounded wait).
        for (int i = 0; i < 10000 && !second_observed_first; ++i) {
            std::this_thread::sleep_for(std::chrono::microseconds{50});
        }
    });
    auto f2 = pool.submit([&] {
        for (int i = 0; i < 10000 && !first_running; ++i) {
            std::this_thread::sleep_for(std::chrono::microseconds{50});
        }
        second_observed_first = first_running.load();
    });
    f1.get();
    f2.get();
    EXPECT_TRUE(second_observed_first);
}

}  // namespace
}  // namespace recloud
