#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace recloud {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
    EXPECT_THROW(thread_pool{0}, std::invalid_argument);
}

TEST(ThreadPool, ReportsSize) {
    thread_pool pool{3};
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsResult) {
    thread_pool pool{2};
    auto future = pool.submit([] { return 21 * 2; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    thread_pool pool{4};
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) {
        f.get();
    }
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
    thread_pool pool{1};
    auto future = pool.submit([]() -> int {
        throw std::runtime_error{"boom"};
    });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    thread_pool pool{4};
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesException) {
    thread_pool pool{2};
    EXPECT_THROW(pool.parallel_for(10,
                                   [](std::size_t i) {
                                       if (i == 7) {
                                           throw std::runtime_error{"bad index"};
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> counter{0};
    {
        thread_pool pool{2};
        for (int i = 0; i < 100; ++i) {
            (void)pool.submit([&counter] {
                std::this_thread::sleep_for(std::chrono::microseconds{100});
                ++counter;
            });
        }
    }  // destructor joins after draining
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, TasksRunConcurrently) {
    thread_pool pool{2};
    std::atomic<bool> first_running{false};
    std::atomic<bool> second_observed_first{false};
    auto f1 = pool.submit([&] {
        first_running = true;
        // Hold the thread until the other task observes us (bounded wait).
        for (int i = 0; i < 10000 && !second_observed_first; ++i) {
            std::this_thread::sleep_for(std::chrono::microseconds{50});
        }
    });
    auto f2 = pool.submit([&] {
        for (int i = 0; i < 10000 && !first_running; ++i) {
            std::this_thread::sleep_for(std::chrono::microseconds{50});
        }
        second_observed_first = first_running.load();
    });
    f1.get();
    f2.get();
    EXPECT_TRUE(second_observed_first);
}

}  // namespace
}  // namespace recloud
