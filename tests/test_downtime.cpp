#include "assess/downtime.hpp"

#include <gtest/gtest.h>

namespace recloud {
namespace {

TEST(Downtime, PaperQuotedValues) {
    // §4.2.2: 99.62% reliability = 33.3 hours/year; 99.97% = 2.6 hours/year.
    EXPECT_NEAR(annual_downtime_hours(0.9962), 33.3, 0.02);
    EXPECT_NEAR(annual_downtime_hours(0.9997), 2.6, 0.03);
}

TEST(Downtime, Endpoints) {
    EXPECT_DOUBLE_EQ(annual_downtime_hours(1.0), 0.0);
    EXPECT_DOUBLE_EQ(annual_downtime_hours(0.0), hours_per_year);
}

TEST(Downtime, ClampsOutOfRangeReliability) {
    EXPECT_DOUBLE_EQ(annual_downtime_hours(1.5), 0.0);
    EXPECT_DOUBLE_EQ(annual_downtime_hours(-0.5), hours_per_year);
}

TEST(Downtime, InverseRelationship) {
    for (const double r : {0.9, 0.99, 0.999, 0.5}) {
        EXPECT_NEAR(reliability_for_downtime(annual_downtime_hours(r)), r, 1e-12);
    }
}

TEST(Downtime, ReliabilityForDowntimeClamps) {
    EXPECT_DOUBLE_EQ(reliability_for_downtime(-5.0), 1.0);
    EXPECT_DOUBLE_EQ(reliability_for_downtime(hours_per_year * 2), 0.0);
}

TEST(Downtime, FiveNines) {
    // 99.999% is ~5.3 minutes of downtime per year.
    EXPECT_NEAR(annual_downtime_hours(0.99999) * 60.0, 5.26, 0.01);
}

}  // namespace
}  // namespace recloud
