// End-to-end integration of link-failure modeling through the facade.
#include <gtest/gtest.h>

#include "core/recloud.hpp"

namespace recloud {
namespace {

TEST(InfraLinks, DisabledByDefault) {
    const auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    EXPECT_EQ(infra.links(), nullptr);
}

TEST(InfraLinks, RegistersEveryLink) {
    infrastructure_options options;
    options.model_link_failures = true;
    const auto infra =
        fat_tree_infrastructure::build(data_center_scale::tiny, options);
    ASSERT_NE(infra.links(), nullptr);
    EXPECT_EQ(infra.links()->component_of_edge.size(),
              infra.tree().graph().edge_count());
    // Links received probabilities from the "other components" model.
    const component_id first = infra.links()->component_of_edge.front();
    EXPECT_GT(infra.registry().probability(first), 0.0);
    EXPECT_EQ(infra.registry().kind(first), component_kind::network_link);
}

TEST(InfraLinks, LinkFailuresLowerAssessedReliability) {
    // Same topology and seed, with and without link modeling: adding ~350
    // fallible links must strictly lower any plan's reliability.
    const application app = application::k_of_n(4, 5);
    deployment_plan plan;

    auto without = fat_tree_infrastructure::build(data_center_scale::tiny);
    plan.hosts = {without.tree().host(0, 0, 0), without.tree().host(1, 0, 0),
                  without.tree().host(2, 0, 0), without.tree().host(3, 0, 0),
                  without.tree().host(4, 0, 0)};
    recloud_options options;
    options.assessment_rounds = 20000;
    re_cloud system_without{without, options};
    const double r_without = system_without.assess(app, plan).reliability;

    infrastructure_options with_links;
    with_links.model_link_failures = true;
    auto with = fat_tree_infrastructure::build(data_center_scale::tiny, with_links);
    re_cloud system_with{with, options};
    const double r_with = system_with.assess(app, plan).reliability;

    EXPECT_LT(r_with, r_without);
}

TEST(InfraLinks, SearchWorksWithLinkModel) {
    infrastructure_options infra_options;
    infra_options.model_link_failures = true;
    auto infra =
        fat_tree_infrastructure::build(data_center_scale::tiny, infra_options);
    recloud_options options;
    options.assessment_rounds = 1500;
    options.max_iterations = 30;
    re_cloud system{infra, options};
    deployment_request request;
    request.app = application::k_of_n(1, 3);
    request.desired_reliability = 0.9;
    request.max_search_time = std::chrono::seconds{10};
    const deployment_response response = system.find_deployment(request);
    EXPECT_TRUE(response.fulfilled);
    EXPECT_EQ(response.plan.hosts.size(), 3u);
}

TEST(InfraLinks, SkipPeeringOptionPropagates) {
    infrastructure_options options;
    options.model_link_failures = true;
    options.links.skip_external_peering = true;
    const auto infra =
        fat_tree_infrastructure::build(data_center_scale::tiny, options);
    ASSERT_NE(infra.links(), nullptr);
    const auto& tree = infra.tree();
    const std::uint32_t peering =
        tree.graph().edge_id(tree.border(0), tree.external());
    EXPECT_EQ(infra.links()->component_of_edge[peering], invalid_node);
}

}  // namespace
}  // namespace recloud
