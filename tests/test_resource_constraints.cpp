// §3.3.3 resource constraints: the search discards infeasible plans before
// assessing them.
#include <gtest/gtest.h>

#include <set>

#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "search/annealing.hpp"
#include "topology/fat_tree.hpp"

namespace recloud {
namespace {

// ---- annealing-level filter ------------------------------------------------

plan_evaluation flat_eval(const deployment_plan&) {
    plan_evaluation eval;
    eval.stats = make_assessment_stats(95, 100);
    eval.score = eval.stats.reliability;
    return eval;
}

TEST(ResourceFilter, RejectedPlansAreNeverEvaluated) {
    const fat_tree ft = fat_tree::build(8);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 3};
    annealing_options options;
    options.max_time = std::chrono::seconds{10};
    options.max_iterations = 200;
    options.use_symmetry = false;
    options.seed = 5;
    // Only even-id hosts are feasible.
    options.filter = [](const deployment_plan& plan) {
        for (const node_id host : plan.hosts) {
            if (host % 2 != 0) {
                return false;
            }
        }
        return true;
    };
    std::size_t evaluations = 0;
    const plan_evaluator counting_eval = [&](const deployment_plan& plan) {
        ++evaluations;
        for (const node_id host : plan.hosts) {
            EXPECT_EQ(host % 2, 0u) << "infeasible plan reached the evaluator";
        }
        return flat_eval(plan);
    };
    const annealing_result result =
        anneal(gen, counting_eval, nullptr, 3, options);
    EXPECT_GT(result.filtered_plans, 0u);
    EXPECT_EQ(result.plans_evaluated, evaluations);
    for (const node_id host : result.best_plan.hosts) {
        EXPECT_EQ(host % 2, 0u);
    }
}

TEST(ResourceFilter, ImpossibleFilterThrows) {
    const fat_tree ft = fat_tree::build(4);
    neighbor_generator gen{ft.topology(), anti_affinity::none, 7};
    annealing_options options;
    options.max_iterations = 50;
    options.filter = [](const deployment_plan&) { return false; };
    EXPECT_THROW((void)anneal(gen, flat_eval, nullptr, 2, options),
                 std::runtime_error);
}

// ---- facade-level demand constraint -----------------------------------------

TEST(ResourceConstraints, OverloadedHostsAreAvoided) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    // Make most hosts nearly full; a demand of 0.5 then only fits hosts
    // with load <= 0.5.
    recloud_options options;
    options.assessment_rounds = 500;
    options.max_iterations = 60;
    options.instance_workload_demand = 0.5;
    options.seed = 11;
    re_cloud system{infra, options};
    deployment_request request;
    request.app = application::k_of_n(1, 3);
    request.desired_reliability = 0.5;
    request.max_search_time = std::chrono::seconds{10};
    const deployment_response response = system.find_deployment(request);
    for (const node_id host : response.plan.hosts) {
        EXPECT_LE(infra.workloads().of(host) + 0.5, 1.0);
    }
}

TEST(ResourceConstraints, DemandWithoutWorkloadsRejected) {
    const auto topo = fat_tree::build(4);
    component_registry registry{topo.graph()};
    fat_tree_routing oracle{topo};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(topo.topology())
                                      .registry(registry)
                                      .oracle(oracle)
                                      .freeze();
    recloud_options options;
    options.instance_workload_demand = 0.3;
    EXPECT_THROW(re_cloud(snapshot, options), std::invalid_argument);
}

TEST(ResourceConstraints, NegativeDemandRejected) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options;
    options.instance_workload_demand = -0.1;
    EXPECT_THROW(re_cloud(infra, options), std::invalid_argument);
}

TEST(ResourceConstraints, FilteredCountReported) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    // Workloads ~N(0.2, 0.05): a demand of 0.78 leaves only the (rare)
    // hosts below ~0.22 feasible, so the search must filter candidates.
    recloud_options options;
    options.assessment_rounds = 300;
    options.max_iterations = 100;
    options.instance_workload_demand = 0.78;
    options.seed = 13;
    re_cloud system{infra, options};
    deployment_request request;
    request.app = application::k_of_n(1, 2);
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{10};
    const deployment_response response = system.find_deployment(request);
    EXPECT_GT(response.search.filtered_plans, 0u);
    for (const node_id host : response.plan.hosts) {
        EXPECT_LE(infra.workloads().of(host), 0.22);
    }
}

}  // namespace
}  // namespace recloud
