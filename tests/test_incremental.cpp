// Cross-plan incremental assessment (DESIGN.md §11): the swap-delta
// retention rule in verdict_cache::bind, the oracle cleanliness classifiers
// it rests on, the serial assessor's CRN round journal, and — the load-
// bearing property — bit-identical assessment_stats and search trajectories
// with incremental mode on or off, across samplers, backends, worker counts
// and transports (CI re-runs the equivalence suites under ASan with
// RECLOUD_INCREMENTAL forced on).
#include "assess/verdict_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "assess/backend.hpp"
#include "core/recloud.hpp"
#include "exec/engine.hpp"
#include "report/report.hpp"
#include "routing/bfs_reachability.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/antithetic.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"
#include "search/neighbor.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

/// Restores one environment variable on scope exit; the facade tests must
/// control RECLOUD_VERDICT_CACHE / RECLOUD_INCREMENTAL explicitly (CI
/// force-sets both).
class env_guard {
public:
    env_guard(const char* name, const char* value) : name_(name) {
        const char* old = std::getenv(name_);
        if (old != nullptr) {
            saved_ = old;
        }
        apply(value);
    }
    ~env_guard() { apply(saved_ ? saved_->c_str() : nullptr); }

private:
    void apply(const char* value) {
        if (value == nullptr) {
            ::unsetenv(name_);
        } else {
            ::setenv(name_, value, 1);
        }
    }
    const char* name_;
    std::optional<std::string> saved_;
};

struct incr_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};

    explicit incr_fixture(double probability = 0.03) {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, probability);
            }
        }
    }

    oracle_factory factory() {
        return [this] { return std::make_unique<bfs_reachability>(topo); };
    }

    /// Plans differing by `offset` visit entirely different host subsets —
    /// the worst case for slot-wise retention, the common case for the
    /// journal's dirty-round detection.
    deployment_plan plan_for(const application& app, std::size_t offset = 0) {
        deployment_plan plan;
        for (std::uint32_t i = 0; i < app.total_instances(); ++i) {
            plan.hosts.push_back(
                topo.hosts[(i * 5 + offset) % topo.hosts.size()]);
        }
        return plan;
    }

    verdict_support support() {
        return verdict_support{topo, registry.size(), &forest, nullptr};
    }
};

void expect_identical(const assessment_stats& a, const assessment_stats& b) {
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.reliable, b.reliable);
    EXPECT_EQ(a.reliability, b.reliability);
    EXPECT_EQ(a.variance, b.variance);
    EXPECT_EQ(a.ciw95, b.ciw95);
}

// ---- neighbor swap hint --------------------------------------------------

TEST(NeighborSwap, LastSwapReportsSingleSlotMove) {
    incr_fixture f;
    neighbor_generator gen{f.topo, anti_affinity::none, 42};
    EXPECT_EQ(gen.last_swap(), nullptr);
    const deployment_plan plan = gen.initial_plan(4);
    EXPECT_EQ(gen.last_swap(), nullptr);

    const deployment_plan next = gen.neighbor_of(plan);
    const plan_swap* swap = gen.last_swap();
    ASSERT_NE(swap, nullptr);
    ASSERT_LT(swap->slot, plan.hosts.size());
    EXPECT_EQ(plan.hosts[swap->slot], swap->old_host);
    EXPECT_EQ(next.hosts[swap->slot], swap->new_host);
    EXPECT_NE(swap->old_host, swap->new_host);
    for (std::size_t i = 0; i < plan.hosts.size(); ++i) {
        if (i != swap->slot) {
            EXPECT_EQ(plan.hosts[i], next.hosts[i]) << "slot " << i;
        }
    }
    // A fresh initial plan is not a single-slot move: the hint dies with it.
    (void)gen.initial_plan(4);
    EXPECT_EQ(gen.last_swap(), nullptr);
}

// ---- cleanliness classifiers vs ground truth -----------------------------

/// Ground truth for a claimed-clean round: "fully connected for any plan"
/// means every host of the topology — alive, or failed but counterfactually
/// revived — can reach the border and every other such host. A false claim
/// here would let a retained verdict go wrong under some future plan.
void expect_clean_claim_holds(reachability_oracle& oracle,
                              const built_topology& topo,
                              const std::vector<component_id>& failed) {
    round_state rs{topo.graph.node_count(), nullptr};
    rs.begin_round(failed);
    oracle.begin_round(rs);
    std::vector<node_id> alive;
    for (const node_id host : topo.hosts) {
        if (rs.failed(host)) {
            continue;
        }
        alive.push_back(host);
        EXPECT_TRUE(oracle.border_reachable(host))
            << "alive host " << host << " unreachable in a clean round";
    }
    for (std::size_t a = 0; a < alive.size(); ++a) {
        for (std::size_t b = a + 1; b < alive.size(); ++b) {
            EXPECT_TRUE(oracle.host_to_host(alive[a], alive[b]))
                << "clean round, hosts " << alive[a] << " <-> " << alive[b];
        }
    }
    // Counterfactual: a failed host's unreachability must be exactly its own
    // failure — revive it (alone) and it must be fully connected again.
    for (const node_id host : topo.hosts) {
        if (!rs.failed(host)) {
            continue;
        }
        std::vector<component_id> revived;
        for (const component_id id : failed) {
            if (id != host) {
                revived.push_back(id);
            }
        }
        const auto fresh = oracle.clone();
        round_state rs2{topo.graph.node_count(), nullptr};
        rs2.begin_round(revived);
        fresh->begin_round(rs2);
        EXPECT_TRUE(fresh->border_reachable(host))
            << "revived host " << host << " unreachable in a clean round";
        if (!alive.empty()) {
            EXPECT_TRUE(fresh->host_to_host(host, alive.front()));
        }
    }
}

TEST(CleanClassifier, FatTreeMatchesGroundTruth) {
    const fat_tree tree = fat_tree::build(4);
    fat_tree_routing oracle{tree};
    const built_topology& topo = tree.topology();
    round_state rs{topo.graph.node_count(), nullptr};

    const auto classify = [&](const std::vector<component_id>& failed) {
        rs.begin_round(failed);
        oracle.begin_round(rs);
        return oracle.round_fully_connected(failed);
    };

    // Directed cases (k=4: two core groups). One failure anywhere inside a
    // single group leaves the other group carrying all traffic: clean.
    EXPECT_TRUE(classify({}));
    EXPECT_TRUE(classify({tree.core(0, 0)}));
    EXPECT_TRUE(classify({tree.aggregation(0, 0)}));
    EXPECT_TRUE(classify({tree.host(0, 0, 0)}));
    EXPECT_TRUE(classify({tree.core(0, 0), tree.core(0, 1), tree.host(1, 1, 0)}));
    // Edge switches strand their rack; a failure in EVERY group leaves no
    // untouched group; the external node is never classifiable.
    EXPECT_FALSE(classify({tree.edge(0, 0)}));
    EXPECT_FALSE(classify({tree.core(0, 0), tree.core(1, 0)}));
    EXPECT_FALSE(classify({tree.core(0, 0), tree.border(1)}));
    EXPECT_FALSE(classify({tree.external()}));

    // Pseudo-random sweeps: every clean claim must survive the ground-truth
    // connectivity check (false negatives are safe, false positives are not).
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    const auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    std::size_t clean_seen = 0;
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<component_id> failed;
        const std::size_t count = 1 + next() % 4;
        for (std::size_t i = 0; i < count; ++i) {
            const component_id id =
                static_cast<component_id>(next() % topo.graph.node_count());
            if (std::find(failed.begin(), failed.end(), id) == failed.end()) {
                failed.push_back(id);
            }
        }
        if (classify(failed)) {
            ++clean_seen;
            expect_clean_claim_holds(oracle, topo, failed);
        }
    }
    EXPECT_GT(clean_seen, 0u) << "classifier never fired - test is vacuous";
}

TEST(CleanClassifier, FatTreeSemiRefinement) {
    const fat_tree tree = fat_tree::build(4);
    fat_tree_routing oracle{tree};
    const built_topology& topo = tree.topology();
    round_state rs{topo.graph.node_count(), nullptr};

    const auto classify = [&](const std::vector<component_id>& failed) {
        rs.begin_round(failed);
        oracle.begin_round(rs);
        return oracle.classify_round(failed);
    };

    EXPECT_EQ(classify({}), round_class::clean);
    EXPECT_EQ(classify({tree.core(0, 0)}), round_class::clean);
    EXPECT_EQ(classify({tree.host(0, 0, 0)}), round_class::clean);
    // An edge switch detaches exactly its own rack: semi, not clean.
    EXPECT_EQ(classify({tree.edge(0, 0)}), round_class::semi);
    EXPECT_EQ(classify({tree.edge(0, 0), tree.core(1, 1)}), round_class::semi);
    EXPECT_EQ(classify({tree.edge(0, 0), tree.edge(1, 1)}), round_class::semi);
    // ... but only while one core group stays completely untouched.
    EXPECT_EQ(classify({tree.edge(0, 0), tree.core(0, 0), tree.core(1, 0)}),
              round_class::unclean);
    EXPECT_EQ(classify({tree.external()}), round_class::unclean);

    // Ground truth behind the semi claim: with an edge switch down, every
    // other rack's host stays border-reachable and pairwise reachable, and
    // the stranded rack is exactly the failed switch's own.
    const std::vector<component_id> failed = {tree.edge(0, 0)};
    rs.begin_round(failed);
    oracle.begin_round(rs);
    std::vector<node_id> attached;
    for (const node_id host : topo.hosts) {
        if (tree.edge_of_host(host) == tree.edge(0, 0)) {
            EXPECT_FALSE(oracle.border_reachable(host));
        } else {
            EXPECT_TRUE(oracle.border_reachable(host));
            attached.push_back(host);
        }
    }
    ASSERT_GE(attached.size(), 2u);
    for (std::size_t a = 0; a < attached.size(); a += 3) {
        for (std::size_t b = a + 1; b < attached.size(); b += 3) {
            EXPECT_TRUE(oracle.host_to_host(attached[a], attached[b]));
        }
    }
}

TEST(CleanClassifier, BfsMatchesGroundTruth) {
    incr_fixture f;
    bfs_reachability oracle{f.topo};
    round_state rs{f.topo.graph.node_count(), nullptr};

    const auto classify = [&](const std::vector<component_id>& failed) {
        rs.begin_round(failed);
        oracle.begin_round(rs);
        return oracle.round_fully_connected(failed);
    };

    const auto spines = f.topo.graph.nodes_of_kind(node_kind::core_switch);
    const auto leaves = f.topo.graph.nodes_of_kind(node_kind::edge_switch);
    ASSERT_GE(spines.size(), 2u);
    EXPECT_TRUE(classify({}));
    EXPECT_TRUE(classify({spines[0]}));  // the second spine carries everything
    EXPECT_TRUE(classify({spines[1], f.topo.hosts[3]}));
    EXPECT_FALSE(classify({spines[0], spines[1]}));  // partitioned
    for (const node_id leaf : leaves) {
        EXPECT_FALSE(classify({leaf})) << "leaf " << leaf
                                       << " strands its rack";
    }

    std::uint64_t x = 0x2545f4914f6cdd1dULL;
    const auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    std::size_t clean_seen = 0;
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<component_id> failed;
        const std::size_t count = 1 + next() % 3;
        for (std::size_t i = 0; i < count; ++i) {
            const component_id id =
                static_cast<component_id>(next() % f.topo.graph.node_count());
            if (std::find(failed.begin(), failed.end(), id) == failed.end()) {
                failed.push_back(id);
            }
        }
        if (classify(failed)) {
            ++clean_seen;
            expect_clean_claim_holds(oracle, f.topo, failed);
        }
    }
    EXPECT_GT(clean_seen, 0u);
}

TEST(CleanClassifier, BfsHintTruncatedFloodStillClassifiesExactly) {
    // The classifier needs the whole external flood, but the assessment seam
    // begins rounds with the plan-hosts hint (which lets the flood stop
    // early). settle_external_flood must finish the frontier before judging
    // cleanliness — and later whole-round queries must match a fresh oracle
    // that never truncated.
    incr_fixture f;
    const std::vector<node_id> hint = {f.topo.hosts[0], f.topo.hosts[5]};
    const auto spines = f.topo.graph.nodes_of_kind(node_kind::core_switch);
    const auto leaves = f.topo.graph.nodes_of_kind(node_kind::edge_switch);
    std::vector<std::vector<component_id>> cases = {
        {},
        {spines[0]},
        {spines[1]},
        {leaves[1]},
        {spines[0], leaves[2]},
        {f.topo.hosts[0]},
        {spines[0], spines[1]},
    };
    for (const auto& failed : cases) {
        bfs_reachability hinted{f.topo};
        round_state rs{f.topo.graph.node_count(), nullptr};
        rs.begin_round(failed);
        hinted.begin_round(rs, std::span<const node_id>{hint});

        bfs_reachability full{f.topo};
        round_state rs2{f.topo.graph.node_count(), nullptr};
        rs2.begin_round(failed);
        full.begin_round(rs2);

        EXPECT_EQ(hinted.round_fully_connected(failed),
                  full.round_fully_connected(failed));
        for (const node_id host : f.topo.hosts) {
            EXPECT_EQ(hinted.border_reachable(host),
                      full.border_reachable(host))
                << "host " << host;
        }
        // Same failed set again (the reuse path): answers must not drift.
        rs.begin_round(failed);
        hinted.begin_round(rs, std::span<const node_id>{hint});
        for (const node_id host : f.topo.hosts) {
            EXPECT_EQ(hinted.border_reachable(host),
                      full.border_reachable(host))
                << "reused flood, host " << host;
        }
    }
}

// ---- warm rebind mechanics ----------------------------------------------

TEST(WarmRebind, RetainsCleanDeltaDisjointEntriesOnly) {
    incr_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support, 1 << 16, /*cross_plan=*/true};
    EXPECT_TRUE(cache.cross_plan());

    const application app = application::k_of_n(2, 3);
    const deployment_plan plan_a = f.plan_for(app);
    deployment_plan plan_b = plan_a;
    node_id fresh_host = invalid_node;
    for (const node_id h : f.topo.hosts) {
        if (std::find(plan_a.hosts.begin(), plan_a.hosts.end(), h) ==
            plan_a.hosts.end()) {
            fresh_host = h;
            break;
        }
    }
    ASSERT_NE(fresh_host, invalid_node);
    plan_b.hosts[0] = fresh_host;

    cache.bind(app, plan_a);
    EXPECT_EQ(cache.stats().cold_rebinds, 1u);  // first bind is always cold

    const node_id spine =
        f.topo.graph.nodes_of_kind(node_kind::core_switch)[0];
    const node_id leaf = f.topo.graph.nodes_of_kind(node_kind::edge_switch)[0];
    const std::vector<component_id> clean_key = {spine};
    const std::vector<component_id> unclean_key = {leaf};
    const std::vector<component_id> delta_key = {spine, plan_a.hosts[0]};
    const std::vector<component_id> none;

    EXPECT_FALSE(cache.lookup(clean_key).hit);
    cache.store(true, round_class::clean);
    EXPECT_FALSE(cache.lookup(unclean_key).hit);
    cache.store(false, round_class::unclean);
    EXPECT_FALSE(cache.lookup(delta_key).hit);
    cache.store(true, round_class::clean);  // clean, key meets the delta
    EXPECT_FALSE(cache.lookup(none).hit);
    cache.store(true, round_class::clean);
    EXPECT_EQ(cache.entries(), 3u);

    cache.bind(app, plan_b);
    EXPECT_EQ(cache.stats().warm_rebinds, 1u);
    EXPECT_EQ(cache.stats().cold_rebinds, 1u);
    EXPECT_EQ(cache.stats().retained_entries, 1u);  // {spine} alone survives

    auto hit = cache.lookup(clean_key);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.verdict);
    EXPECT_EQ(cache.stats().cross_plan_hits, 1u);

    EXPECT_FALSE(cache.lookup(unclean_key).hit);  // unclean: dropped
    cache.store(false, round_class::unclean);
    // {spine, old_host}: the departed host left the support, so the key now
    // FILTERS to {spine} — and must serve the retained {spine} verdict, not
    // the dropped two-component one.
    auto refiltered = cache.lookup(delta_key);
    EXPECT_TRUE(refiltered.hit);
    EXPECT_TRUE(refiltered.verdict);
    ASSERT_EQ(cache.last_key().size(), 1u);
    EXPECT_EQ(cache.last_key()[0], spine);
    // The arriving host is new support: its signature has never been judged.
    std::vector<component_id> new_key = {spine, fresh_host};
    EXPECT_FALSE(cache.lookup(new_key).hit);
    cache.store(false, round_class::unclean);
    // The empty class was stored clean, so it survives the swap too.
    const std::uint64_t empty_hits_before = cache.stats().empty_hits;
    auto empty = cache.lookup(none);
    EXPECT_TRUE(empty.hit);
    EXPECT_TRUE(empty.verdict);
    EXPECT_EQ(cache.stats().empty_hits, empty_hits_before + 1);
}

TEST(WarmRebind, SemiEntriesDropOnlyOnAttachmentOverlap) {
    incr_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support, 1 << 16, /*cross_plan=*/true};

    const application app = application::k_of_n(2, 3);
    const deployment_plan plan_a = f.plan_for(app);
    deployment_plan plan_b = plan_a;
    node_id fresh_host = invalid_node;
    for (const node_id h : f.topo.hosts) {
        if (std::find(plan_a.hosts.begin(), plan_a.hosts.end(), h) ==
            plan_a.hosts.end()) {
            fresh_host = h;
            break;
        }
    }
    ASSERT_NE(fresh_host, invalid_node);
    plan_b.hosts[0] = fresh_host;

    // Attachment components of the changed hosts: their leaf switches
    // (support has no links or fault-tree dependencies here).
    const node_id old_leaf = f.topo.graph.neighbors(plan_a.hosts[0])[0];
    const node_id new_leaf = f.topo.graph.neighbors(fresh_host)[0];
    EXPECT_EQ(support.host_attachment(fresh_host).size(), 1u);
    EXPECT_EQ(support.host_attachment(fresh_host)[0], new_leaf);
    node_id other_leaf = invalid_node;
    for (const node_id leaf :
         f.topo.graph.nodes_of_kind(node_kind::edge_switch)) {
        if (leaf != old_leaf && leaf != new_leaf) {
            other_leaf = leaf;
            break;
        }
    }
    ASSERT_NE(other_leaf, invalid_node);
    const auto spines = f.topo.graph.nodes_of_kind(node_kind::core_switch);

    cache.bind(app, plan_a);
    const std::vector<component_id> unrelated = {other_leaf};
    const std::vector<component_id> touched = {new_leaf};
    const std::vector<component_id> with_old_host = {other_leaf,
                                                     plan_a.hosts[0]};
    const std::vector<component_id> clean_with_attachment = {new_leaf,
                                                             spines[0]};
    EXPECT_FALSE(cache.lookup(unrelated).hit);
    cache.store(true, round_class::semi);
    EXPECT_FALSE(cache.lookup(touched).hit);
    cache.store(false, round_class::semi);
    EXPECT_FALSE(cache.lookup(with_old_host).hit);
    cache.store(true, round_class::semi);
    EXPECT_FALSE(cache.lookup(clean_with_attachment).hit);
    cache.store(true, round_class::clean);

    cache.bind(app, plan_b);
    EXPECT_EQ(cache.stats().warm_rebinds, 1u);
    // Survivors: `unrelated` (semi, disjoint) and the clean entry. The
    // other two semi entries met the attachment / core delta.
    EXPECT_EQ(cache.stats().retained_entries, 2u);
    EXPECT_TRUE(cache.lookup(unrelated).hit);
    EXPECT_FALSE(cache.lookup(touched).hit);
    cache.store(false, round_class::semi);
    EXPECT_FALSE(cache.lookup(std::vector<component_id>{other_leaf,
                                                        fresh_host})
                     .hit);
    cache.store(true, round_class::semi);
    // Attachment components never invalidate CLEAN entries: a clean round
    // has no attachment failures, so its verdict cannot depend on them.
    EXPECT_TRUE(cache.lookup(clean_with_attachment).hit);
}

TEST(WarmRebind, PathologicalChurnFallsBackToEpochWipe) {
    // An oracle that classifies nothing as clean (the default base-class
    // answer) must degrade cross-plan mode to exactly the old behavior:
    // every rebind wipes, nothing is retained, nothing is served stale.
    incr_fixture f;
    const verdict_support support = f.support();
    verdict_cache cache{support, 1 << 16, /*cross_plan=*/true};
    const application app = application::k_of_n(2, 3);
    cache.bind(app, f.plan_for(app, 0));

    const auto spines = f.topo.graph.nodes_of_kind(node_kind::core_switch);
    const std::vector<component_id> spine_a = {spines[0]};
    const std::vector<component_id> spine_b = {spines[1]};
    const std::vector<component_id> none;
    for (std::size_t offset = 1; offset <= 4; ++offset) {
        EXPECT_FALSE(cache.lookup(spine_a).hit);
        cache.store(true, round_class::unclean);
        EXPECT_FALSE(cache.lookup(spine_b).hit);
        cache.store(false, round_class::unclean);
        EXPECT_FALSE(cache.lookup(none).hit);
        cache.store(true, round_class::unclean);

        cache.bind(app, f.plan_for(app, offset));
        EXPECT_EQ(cache.entries(), 0u) << "offset " << offset;
    }
    EXPECT_EQ(cache.stats().warm_rebinds, 4u);
    EXPECT_EQ(cache.stats().retained_entries, 0u);
    EXPECT_EQ(cache.stats().cross_plan_hits, 0u);

    // An application-shape change can never rebind warm.
    const application other = application::k_of_n(1, 2);
    cache.bind(other, f.plan_for(other));
    EXPECT_EQ(cache.stats().cold_rebinds, 2u);
}

// ---- equivalence: incremental on == off, bit for bit ---------------------

/// The CRN shape of the annealing inner loop: reset to a pinned seed, assess
/// a plan, move to the next plan. Includes a same-plan re-assessment WITHOUT
/// a reset (the stream-debt path: a journal replay must leave the sampler
/// position exactly where a full pass would have).
template <typename Backend>
std::vector<assessment_stats> run_crn_sequence(
    Backend& backend, const application& app,
    const std::vector<deployment_plan>& plans, std::size_t rounds) {
    std::vector<assessment_stats> out;
    backend.reset_stream(5);
    out.push_back(backend.assess(app, plans[0], rounds));
    backend.reset_stream(5);
    out.push_back(backend.assess(app, plans[1], rounds));
    out.push_back(backend.assess(app, plans[1], rounds));  // no reset: debt
    backend.reset_stream(5);
    out.push_back(backend.assess(app, plans[2], rounds));
    backend.reset_stream(7);  // different stream: journal must not apply
    out.push_back(backend.assess(app, plans[0], rounds));
    backend.reset_stream(5);
    out.push_back(backend.assess(app, plans[3], rounds));
    return out;
}

TEST(IncrementalEquivalence, SerialMultiPlanAcrossSamplers) {
    incr_fixture f;
    const application app = application::k_of_n(2, 3);
    const std::vector<deployment_plan> plans = {
        f.plan_for(app, 0), f.plan_for(app, 1), f.plan_for(app, 2),
        f.plan_for(app, 7)};
    const verdict_support support = f.support();
    const auto make = [&](int kind) -> std::unique_ptr<failure_sampler> {
        switch (kind) {
            case 0:
                return std::make_unique<monte_carlo_sampler>(
                    f.registry.probabilities(), 57);
            case 1:
                return std::make_unique<antithetic_sampler>(
                    f.registry.probabilities(), 57);
            default:
                return std::make_unique<extended_dagger_sampler>(
                    f.registry.probabilities(), 57);
        }
    };
    // mode 0: no cache at all (ground truth); 1: cache, incremental off;
    // 2: cache + cross-plan retention + journal replay.
    for (int kind = 0; kind < 3; ++kind) {
        std::optional<std::vector<assessment_stats>> reference;
        for (int mode = 0; mode < 3; ++mode) {
            auto sampler = make(kind);
            bfs_reachability oracle{f.topo};
            verdict_cache_options options;
            options.enabled = mode > 0;
            options.support = &support;
            options.cross_plan = mode == 2;
            serial_backend backend{f.registry.size(), &f.forest, oracle,
                                   *sampler, options};
            const auto stats = run_crn_sequence(backend, app, plans, 1500);
            if (!reference) {
                reference = stats;
            } else {
                ASSERT_EQ(stats.size(), reference->size());
                for (std::size_t i = 0; i < stats.size(); ++i) {
                    SCOPED_TRACE("sampler " + std::to_string(kind) +
                                 " mode " + std::to_string(mode) + " step " +
                                 std::to_string(i));
                    expect_identical(stats[i], (*reference)[i]);
                }
            }
            if (mode == 2) {
                ASSERT_NE(backend.cache_stats(), nullptr);
                EXPECT_GT(backend.cache_stats()->warm_rebinds, 0u);
                EXPECT_GT(backend.cache_stats()->retained_entries, 0u);
                EXPECT_GT(backend.cache_stats()->cross_plan_hits, 0u);
            }
        }
    }
}

TEST(IncrementalEquivalence, ParallelAcrossWorkerCounts) {
    incr_fixture f;
    const application app = application::k_of_n(2, 3);
    const std::vector<deployment_plan> plans = {
        f.plan_for(app, 0), f.plan_for(app, 1), f.plan_for(app, 2),
        f.plan_for(app, 7)};
    const verdict_support support = f.support();
    std::optional<std::vector<assessment_stats>> reference;
    for (const std::size_t workers : {1u, 2u, 8u}) {
        for (const bool incremental : {false, true}) {
            extended_dagger_sampler sampler{f.registry.probabilities(), 33};
            parallel_backend_options options{.threads = workers,
                                             .batch_rounds = 250};
            options.verdict_cache.enabled = true;
            options.verdict_cache.support = &support;
            options.verdict_cache.cross_plan = incremental;
            parallel_backend backend{f.registry.size(), &f.forest, f.factory(),
                                     sampler, options};
            const auto stats = run_crn_sequence(backend, app, plans, 2000);
            if (!reference) {
                reference = stats;
            } else {
                ASSERT_EQ(stats.size(), reference->size());
                for (std::size_t i = 0; i < stats.size(); ++i) {
                    SCOPED_TRACE("workers " + std::to_string(workers) +
                                 " incremental " + std::to_string(incremental) +
                                 " step " + std::to_string(i));
                    expect_identical(stats[i], (*reference)[i]);
                }
            }
            if (incremental) {
                ASSERT_NE(backend.cache_stats(), nullptr);
                EXPECT_GT(backend.cache_stats()->warm_rebinds, 0u);
            }
        }
    }
}

TEST(IncrementalEquivalence, EngineAcrossTransports) {
    incr_fixture f;
    const application app = application::k_of_n(2, 3);
    const std::vector<deployment_plan> plans = {
        f.plan_for(app, 0), f.plan_for(app, 1), f.plan_for(app, 2),
        f.plan_for(app, 7)};
    const verdict_support support = f.support();
    std::optional<std::vector<assessment_stats>> reference;
    for (const bool socket : {false, true}) {
        for (const bool incremental : {false, true}) {
            extended_dagger_sampler sampler{f.registry.probabilities(), 19};
            engine_options options{.workers = 2, .batch_rounds = 200};
            options.verdict_cache.enabled = true;
            options.verdict_cache.support = &support;
            options.verdict_cache.cross_plan = incremental;
            if (socket) {
                options.transport = transport_kind::socket;
                options.socket.worker_binary = RECLOUD_WORKER_BIN;
                options.topology = &f.topo;
            }
            engine_backend backend{f.registry.size(), &f.forest, f.factory(),
                                   sampler, options};
            const auto stats = run_crn_sequence(backend, app, plans, 1000);
            if (!reference) {
                reference = stats;
            } else {
                ASSERT_EQ(stats.size(), reference->size());
                for (std::size_t i = 0; i < stats.size(); ++i) {
                    SCOPED_TRACE(std::string("transport ") +
                                 (socket ? "socket" : "loopback") +
                                 " incremental " + std::to_string(incremental) +
                                 " step " + std::to_string(i));
                    expect_identical(stats[i], (*reference)[i]);
                }
            }
            // Counter visibility: loopback sums its live worker caches;
            // socket worker counters live in the worker processes and are
            // not shipped back (bit-identity above is the real property).
            if (incremental && !socket) {
                ASSERT_NE(backend.cache_stats(), nullptr);
                EXPECT_GT(backend.cache_stats()->warm_rebinds, 0u);
            }
        }
    }
}

// ---- pinned search trajectories ------------------------------------------

void expect_same_search(const deployment_response& on,
                        const deployment_response& off) {
    EXPECT_EQ(on.plan, off.plan);
    expect_identical(on.stats, off.stats);
    EXPECT_EQ(on.search.plans_evaluated, off.search.plans_evaluated);
    EXPECT_EQ(on.search.plans_generated, off.search.plans_generated);
    EXPECT_EQ(on.search.symmetric_skips, off.search.symmetric_skips);
    EXPECT_EQ(on.fulfilled, off.fulfilled);
}

TEST(IncrementalTrajectory, PinnedSearchAcrossBackends) {
    // The flagship facade property, now for the incremental switch: a full
    // annealing search — CRN resets, rejected candidates, winner
    // re-assessment — lands on the identical plan, stats and counters with
    // RECLOUD_INCREMENTAL forced on or off, for every backend.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    for (const assessment_backend_kind kind :
         {assessment_backend_kind::serial, assessment_backend_kind::parallel,
          assessment_backend_kind::engine}) {
        const auto run = [&](bool incremental) {
            env_guard cache_env{"RECLOUD_VERDICT_CACHE", "1"};
            env_guard incr_env{"RECLOUD_INCREMENTAL", incremental ? "1" : "0"};
            recloud_options options;
            options.assessment_rounds = 1000;
            options.max_iterations = 25;
            options.seed = 9;
            options.backend = kind;
            options.assessment_threads = 2;
            re_cloud system{infra, options};
            deployment_request request{application::k_of_n(2, 3), 1.0,
                                       std::chrono::seconds{20}};
            deployment_response response = system.find_deployment(request);
            const verdict_cache_stats* cache = system.cache_stats();
            EXPECT_NE(cache, nullptr);
            if (cache != nullptr) {
                if (incremental) {
                    EXPECT_GT(cache->warm_rebinds, 0u);
                } else {
                    EXPECT_EQ(cache->warm_rebinds, 0u);
                }
            }
            return response;
        };
        SCOPED_TRACE("backend " + std::to_string(static_cast<int>(kind)));
        const deployment_response off = run(false);
        const deployment_response on = run(true);
        expect_same_search(on, off);
    }
}

TEST(IncrementalTrajectory, EnvVarOverridesOptions) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    const auto warm_rebinds_after_search = [&](bool option_value,
                                               const char* env_value) {
        env_guard cache_env{"RECLOUD_VERDICT_CACHE", "1"};
        env_guard incr_env{"RECLOUD_INCREMENTAL", env_value};
        recloud_options options;
        options.assessment_rounds = 200;
        options.max_iterations = 6;
        options.seed = 11;
        options.incremental = option_value;
        re_cloud system{infra, options};
        deployment_request request{application::k_of_n(2, 3), 1.0,
                                   std::chrono::seconds{10}};
        (void)system.find_deployment(request);
        const verdict_cache_stats* cache = system.cache_stats();
        EXPECT_NE(cache, nullptr);
        return cache != nullptr ? cache->warm_rebinds : 0;
    };
    EXPECT_EQ(warm_rebinds_after_search(true, "0"), 0u);   // env wins: off
    EXPECT_GT(warm_rebinds_after_search(false, "1"), 0u);  // env wins: on
    EXPECT_EQ(warm_rebinds_after_search(false, nullptr), 0u);
    EXPECT_GT(warm_rebinds_after_search(true, nullptr), 0u);
}

// ---- reporting -----------------------------------------------------------

TEST(IncrementalReport, CacheStatsJsonCarriesCrossPlanCounters) {
    verdict_cache_stats stats;
    stats.rounds = 10;
    stats.warm_rebinds = 3;
    stats.cold_rebinds = 2;
    stats.cross_plan_hits = 7;
    stats.retained_entries = 5;
    const std::string json = to_json(stats);
    EXPECT_NE(json.find("\"warm_rebinds\":3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"cold_rebinds\":2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"cross_plan_hits\":7"), std::string::npos) << json;
    EXPECT_NE(json.find("\"retained_entries\":5"), std::string::npos) << json;
}

}  // namespace
}  // namespace recloud
