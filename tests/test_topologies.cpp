#include <gtest/gtest.h>

#include <set>

#include "topology/jellyfish.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/stats.hpp"
#include "topology/vl2.hpp"

namespace recloud {
namespace {

/// Fully-healthy connectivity check: every host must reach the external
/// node in the failure-free graph.
bool all_hosts_connected(const built_topology& topo) {
    std::vector<std::uint8_t> seen(topo.graph.node_count(), 0);
    std::vector<node_id> queue{topo.external};
    seen[topo.external] = 1;
    std::size_t head = 0;
    while (head < queue.size()) {
        for (const node_id n : topo.graph.neighbors(queue[head++])) {
            if (!seen[n]) {
                seen[n] = 1;
                queue.push_back(n);
            }
        }
    }
    for (const node_id h : topo.hosts) {
        if (!seen[h]) {
            return false;
        }
    }
    return true;
}

TEST(LeafSpine, Counts) {
    const built_topology topo =
        build_leaf_spine({.spines = 4, .leaves = 8, .hosts_per_leaf = 16,
                          .border_leaves = 2});
    const topology_stats s = compute_topology_stats(topo);
    EXPECT_EQ(s.core_switches, 4u);  // spines use the core kind
    EXPECT_EQ(s.edge_switches, 8u);
    EXPECT_EQ(s.border_switches, 2u);
    EXPECT_EQ(s.hosts, 128u);
    EXPECT_EQ(topo.hosts.size(), 128u);
    EXPECT_EQ(topo.border_switches.size(), 2u);
}

TEST(LeafSpine, EveryLeafSeesEverySpine) {
    const built_topology topo = build_leaf_spine({.spines = 3, .leaves = 5,
                                                  .hosts_per_leaf = 2,
                                                  .border_leaves = 1});
    const auto spines = topo.graph.nodes_of_kind(node_kind::core_switch);
    for (const node_id leaf : topo.graph.nodes_of_kind(node_kind::edge_switch)) {
        for (const node_id spine : spines) {
            EXPECT_TRUE(topo.graph.has_edge(leaf, spine));
        }
    }
}

TEST(LeafSpine, FullyConnectedWhenHealthy) {
    EXPECT_TRUE(all_hosts_connected(build_leaf_spine({})));
}

TEST(LeafSpine, RejectsInvalidParams) {
    EXPECT_THROW((void)build_leaf_spine({.spines = 0}), std::invalid_argument);
    EXPECT_THROW((void)build_leaf_spine({.border_leaves = 0}), std::invalid_argument);
}

TEST(Vl2, Counts) {
    const built_topology topo = build_vl2(
        {.intermediates = 4, .aggregations = 8, .tors = 16, .hosts_per_tor = 20,
         .border_intermediates = 2});
    const topology_stats s = compute_topology_stats(topo);
    EXPECT_EQ(s.core_switches + s.border_switches, 4u);
    EXPECT_EQ(s.border_switches, 2u);
    EXPECT_EQ(s.aggregation_switches, 8u);
    EXPECT_EQ(s.edge_switches, 16u);
    EXPECT_EQ(s.hosts, 320u);
}

TEST(Vl2, TorsAreDualHomed) {
    const built_topology topo = build_vl2({});
    for (const node_id tor : topo.graph.nodes_of_kind(node_kind::edge_switch)) {
        std::size_t agg_links = 0;
        for (const node_id n : topo.graph.neighbors(tor)) {
            if (topo.graph.kind(n) == node_kind::aggregation_switch) {
                ++agg_links;
            }
        }
        EXPECT_EQ(agg_links, 2u);
    }
}

TEST(Vl2, FullyConnectedWhenHealthy) {
    EXPECT_TRUE(all_hosts_connected(build_vl2({})));
}

TEST(Vl2, RejectsInvalidParams) {
    EXPECT_THROW((void)build_vl2({.aggregations = 1}), std::invalid_argument);
    EXPECT_THROW((void)build_vl2({.border_intermediates = 99}),
                 std::invalid_argument);
}

TEST(Jellyfish, SwitchDegreeIsRegular) {
    const jellyfish_params params{.switches = 20, .degree = 4,
                                  .hosts_per_switch = 3, .border_switches = 2,
                                  .seed = 5};
    const built_topology topo = build_jellyfish(params);
    for (node_id id = 0; id < topo.graph.node_count(); ++id) {
        if (!is_switch(topo.graph.kind(id))) {
            continue;
        }
        std::size_t switch_links = 0;
        for (const node_id n : topo.graph.neighbors(id)) {
            if (is_switch(topo.graph.kind(n))) {
                ++switch_links;
            }
        }
        EXPECT_EQ(switch_links, 4u);
    }
}

TEST(Jellyfish, HostCount) {
    const built_topology topo = build_jellyfish(
        {.switches = 10, .degree = 3, .hosts_per_switch = 5,
         .border_switches = 1, .seed = 9});
    EXPECT_EQ(topo.hosts.size(), 50u);
}

TEST(Jellyfish, DeterministicPerSeed) {
    const jellyfish_params params{.switches = 12, .degree = 4,
                                  .hosts_per_switch = 2, .border_switches = 1,
                                  .seed = 77};
    const built_topology a = build_jellyfish(params);
    const built_topology b = build_jellyfish(params);
    ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
    for (node_id id = 0; id < a.graph.node_count(); ++id) {
        const auto na = a.graph.neighbors(id);
        const auto nb = b.graph.neighbors(id);
        EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
    }
}

TEST(Jellyfish, DifferentSeedsDiffer) {
    jellyfish_params params{.switches = 16, .degree = 4, .hosts_per_switch = 1,
                            .border_switches = 1, .seed = 1};
    const built_topology a = build_jellyfish(params);
    params.seed = 2;
    const built_topology b = build_jellyfish(params);
    bool any_difference = false;
    for (node_id id = 0; id < a.graph.node_count() && !any_difference; ++id) {
        const auto na = a.graph.neighbors(id);
        const auto nb = b.graph.neighbors(id);
        any_difference = !std::equal(na.begin(), na.end(), nb.begin(), nb.end());
    }
    EXPECT_TRUE(any_difference);
}

TEST(Jellyfish, RejectsInvalidParams) {
    EXPECT_THROW((void)build_jellyfish({.switches = 5, .degree = 3}),
                 std::invalid_argument);  // odd stub count
    EXPECT_THROW((void)build_jellyfish({.switches = 4, .degree = 4}),
                 std::invalid_argument);  // degree >= switches
    EXPECT_THROW((void)build_jellyfish({.border_switches = 0}),
                 std::invalid_argument);
}

TEST(TopologyStats, NamesPropagate) {
    EXPECT_FALSE(compute_topology_stats(build_leaf_spine({})).name.empty());
    EXPECT_FALSE(compute_topology_stats(build_vl2({})).name.empty());
}

}  // namespace
}  // namespace recloud
