#include <gtest/gtest.h>

#include <vector>

#include "faults/round_state.hpp"
#include "routing/bfs_reachability.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/monte_carlo.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "util/rng.hpp"

namespace recloud {
namespace {

// ---- reference up/down (valley-free) reachability over raw adjacency ----
// Structurally independent of the arithmetic oracle: walks the graph's
// neighbor lists instead of index math.

bool alive(round_state& rs, node_id id) { return !rs.failed(id); }

bool ref_border_reachable(const fat_tree& ft, round_state& rs, node_id host) {
    const network_graph& g = ft.graph();
    if (!alive(rs, host)) {
        return false;
    }
    const node_id edge = ft.edge_of_host(host);
    if (!alive(rs, edge)) {
        return false;
    }
    for (const node_id agg : g.neighbors(edge)) {
        if (g.kind(agg) != node_kind::aggregation_switch || !alive(rs, agg)) {
            continue;
        }
        for (const node_id core : g.neighbors(agg)) {
            if (g.kind(core) != node_kind::core_switch || !alive(rs, core)) {
                continue;
            }
            for (const node_id border : g.neighbors(core)) {
                if (g.kind(border) == node_kind::border_switch &&
                    alive(rs, border)) {
                    return true;
                }
            }
        }
    }
    return false;
}

bool ref_host_to_host(const fat_tree& ft, round_state& rs, node_id a, node_id b) {
    const network_graph& g = ft.graph();
    if (!alive(rs, a) || !alive(rs, b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    const node_id edge_a = ft.edge_of_host(a);
    const node_id edge_b = ft.edge_of_host(b);
    if (!alive(rs, edge_a)) {
        return false;
    }
    if (edge_a == edge_b) {
        return true;
    }
    if (!alive(rs, edge_b)) {
        return false;
    }
    // Same pod: any alive aggregation switch adjacent to both edges.
    for (const node_id agg : g.neighbors(edge_a)) {
        if (g.kind(agg) != node_kind::aggregation_switch || !alive(rs, agg)) {
            continue;
        }
        if (g.has_edge(agg, edge_b)) {
            return true;
        }
        // Cross-pod: up to a core, down into b's pod via an agg adjacent to
        // edge_b.
        for (const node_id core : g.neighbors(agg)) {
            if (g.kind(core) != node_kind::core_switch || !alive(rs, core)) {
                continue;
            }
            for (const node_id agg_b : g.neighbors(core)) {
                if (g.kind(agg_b) == node_kind::aggregation_switch &&
                    alive(rs, agg_b) && g.has_edge(agg_b, edge_b)) {
                    return true;
                }
            }
        }
    }
    return false;
}

// ---- property suite: arithmetic oracle == reference, random failures ----

struct routing_case {
    int k;
    double failure_probability;
};

class FatTreeRoutingProperty : public ::testing::TestWithParam<routing_case> {};

TEST_P(FatTreeRoutingProperty, MatchesAdjacencyReference) {
    const auto [k, q] = GetParam();
    const fat_tree ft = fat_tree::build(k);
    const std::size_t n = ft.graph().node_count();
    std::vector<double> probs(n, q);
    probs[ft.external()] = 0.0;
    monte_carlo_sampler sampler{probs, 1234 + static_cast<std::uint64_t>(k)};

    round_state rs{n, nullptr};
    fat_tree_routing oracle{ft};
    rng pick{99};
    const auto& hosts = ft.topology().hosts;

    std::vector<component_id> failed;
    for (int round = 0; round < 300; ++round) {
        sampler.next_round(failed);
        rs.begin_round(failed);
        oracle.begin_round(rs);
        // A handful of random hosts and pairs per round.
        for (int probe = 0; probe < 8; ++probe) {
            const node_id h = hosts[pick.uniform_below(hosts.size())];
            ASSERT_EQ(oracle.border_reachable(h), ref_border_reachable(ft, rs, h))
                << "k=" << k << " round=" << round << " host=" << h;
            const node_id h2 = hosts[pick.uniform_below(hosts.size())];
            ASSERT_EQ(oracle.host_to_host(h, h2), ref_host_to_host(ft, rs, h, h2))
                << "k=" << k << " round=" << round << " pair=" << h << "," << h2;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FatTreeRoutingProperty,
    ::testing::Values(routing_case{4, 0.05}, routing_case{4, 0.3},
                      routing_case{8, 0.05}, routing_case{8, 0.3},
                      routing_case{8, 0.6}, routing_case{12, 0.1}),
    [](const auto& info) {
        return "k" + std::to_string(info.param.k) + "_q" +
               std::to_string(static_cast<int>(info.param.failure_probability * 100));
    });

// ---- crafted fat-tree scenarios -----------------------------------------

struct ft_fixture {
    fat_tree ft = fat_tree::build(4);
    round_state rs{ft.graph().node_count(), nullptr};
    fat_tree_routing oracle{ft};

    void round(std::vector<component_id> failed) {
        rs.begin_round(failed);
        oracle.begin_round(rs);
    }
};

TEST(FatTreeRouting, HealthyEverythingReachable) {
    ft_fixture f;
    f.round({});
    for (const node_id h : f.ft.topology().hosts) {
        EXPECT_TRUE(f.oracle.border_reachable(h));
    }
    EXPECT_TRUE(f.oracle.host_to_host(f.ft.host(0, 0, 0), f.ft.host(2, 1, 1)));
}

TEST(FatTreeRouting, DeadHostUnreachable) {
    ft_fixture f;
    const node_id h = f.ft.host(0, 0, 0);
    f.round({h});
    EXPECT_FALSE(f.oracle.border_reachable(h));
    EXPECT_FALSE(f.oracle.host_to_host(h, f.ft.host(0, 0, 1)));
}

TEST(FatTreeRouting, EdgeFailureTakesDownTheRack) {
    // §3.2.1: "an edge/ToR switch failure makes all hosts under that switch
    // unreachable" — the implicitly-modeled correlated failure.
    ft_fixture f;
    f.round({f.ft.edge(0, 0)});
    for (int slot = 0; slot < f.ft.hosts_per_edge(); ++slot) {
        EXPECT_FALSE(f.oracle.border_reachable(f.ft.host(0, 0, slot)));
    }
    EXPECT_TRUE(f.oracle.border_reachable(f.ft.host(0, 1, 0)));
}

TEST(FatTreeRouting, AllBordersDeadKillsExternalOnly) {
    ft_fixture f;
    f.round({f.ft.border(0), f.ft.border(1)});
    const node_id a = f.ft.host(0, 0, 0);
    const node_id b = f.ft.host(1, 1, 1);
    EXPECT_FALSE(f.oracle.border_reachable(a));
    EXPECT_TRUE(f.oracle.host_to_host(a, b));  // internal paths unaffected
}

TEST(FatTreeRouting, CrossPodNeedsCommonAliveGroup) {
    // Pod 0 keeps only agg group 0; pod 1 keeps only agg group 1: the
    // valley-free up/down protocol cannot connect them even though a
    // "valley" through a third pod physically exists.
    ft_fixture f;
    f.round({f.ft.aggregation(0, 1), f.ft.aggregation(1, 0)});
    EXPECT_FALSE(
        f.oracle.host_to_host(f.ft.host(0, 0, 0), f.ft.host(1, 0, 0)));
    // Same-pod traffic in pod 0 still works through agg group 0.
    EXPECT_TRUE(f.oracle.host_to_host(f.ft.host(0, 0, 0), f.ft.host(0, 1, 0)));
}

TEST(FatTreeRouting, BorderGroupGatesExternalPath) {
    // Kill border 0: external reachability must go through group 1.
    ft_fixture f;
    f.round({f.ft.border(0), f.ft.aggregation(0, 1)});
    // Pod 0 lost agg group 1 and border 0 is dead: no external path.
    EXPECT_FALSE(f.oracle.border_reachable(f.ft.host(0, 0, 0)));
    // Pod 1 has agg group 1 alive -> border 1 -> external.
    EXPECT_TRUE(f.oracle.border_reachable(f.ft.host(1, 0, 0)));
}

TEST(FatTreeRouting, CoreGroupWipeout) {
    // Kill all cores of group 0: group 0 provides no transit.
    ft_fixture f;
    f.round({f.ft.core(0, 0), f.ft.core(0, 1), f.ft.aggregation(0, 1)});
    // Pod 0 can only go up via agg 0 -> cores of group 0 (all dead).
    EXPECT_FALSE(f.oracle.border_reachable(f.ft.host(0, 0, 0)));
}

TEST(FatTreeRouting, UsesEffectiveFailuresFromFaultTrees) {
    fat_tree ft = fat_tree::build(4);
    component_registry registry{ft.graph()};
    fault_tree_forest forest{ft.graph().node_count()};
    const component_id supply =
        registry.add(component_kind::power_supply, "ps0");
    forest.attach(ft.edge(0, 0), forest.add_leaf(supply));

    round_state rs{registry.size(), &forest};
    fat_tree_routing oracle{ft};
    rs.begin_round(std::vector<component_id>{supply});
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(ft.host(0, 0, 0)));
    EXPECT_TRUE(oracle.border_reachable(ft.host(0, 1, 0)));
}

// ---- generic BFS oracle ---------------------------------------------------

TEST(BfsReachability, LeafSpineBorderPaths) {
    const built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 2, .hosts_per_leaf = 2, .border_leaves = 1});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};

    rs.begin_round(std::vector<component_id>{});
    oracle.begin_round(rs);
    for (const node_id h : topo.hosts) {
        EXPECT_TRUE(oracle.border_reachable(h));
    }
    EXPECT_TRUE(oracle.host_to_host(topo.hosts[0], topo.hosts[3]));

    // Kill both spines: hosts become islands.
    const auto spines = topo.graph.nodes_of_kind(node_kind::core_switch);
    rs.begin_round(spines);
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(topo.hosts[0]));
    EXPECT_FALSE(oracle.host_to_host(topo.hosts[0], topo.hosts[2]));
    EXPECT_TRUE(oracle.host_to_host(topo.hosts[0], topo.hosts[1]));  // same leaf
}

TEST(BfsReachability, FailedEndpointsNeverReachable) {
    const built_topology topo = build_leaf_spine({});
    round_state rs{topo.graph.node_count(), nullptr};
    bfs_reachability oracle{topo};
    rs.begin_round(std::vector<component_id>{topo.hosts[0]});
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(topo.hosts[0]));
    EXPECT_FALSE(oracle.host_to_host(topo.hosts[0], topo.hosts[1]));
    EXPECT_FALSE(oracle.host_to_host(topo.hosts[1], topo.hosts[0]));
    EXPECT_TRUE(oracle.host_to_host(topo.hosts[1], topo.hosts[1]));
}

TEST(BfsReachability, QueriesBeforeBeginRoundRejected) {
    const built_topology topo = build_leaf_spine({});
    bfs_reachability oracle{topo};
    EXPECT_THROW((void)oracle.border_reachable(topo.hosts[0]), std::logic_error);
    EXPECT_THROW((void)oracle.host_to_host(topo.hosts[0], topo.hosts[1]),
                 std::logic_error);
}

TEST(BfsReachability, SourceStampSurvivesUint32WrapAround) {
    // The per-source flood stamp is a uint32 that increments once per flood;
    // after 2^32 floods it wraps and a stale mark could alias a fresh stamp.
    // Fast-forward the stamp to the edge and check every answer across the
    // wrap against a fresh oracle that is nowhere near it.
    const built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 3, .hosts_per_leaf = 3, .border_leaves = 1});
    const std::size_t n = topo.graph.node_count();
    round_state rs_wrapping{n, nullptr};
    round_state rs_fresh{n, nullptr};
    bfs_reachability wrapping{topo};
    bfs_reachability fresh{topo};
    wrapping.set_source_stamp_for_test(0xFFFFFFFEu);

    std::vector<double> probs(n, 0.2);
    monte_carlo_sampler sampler{probs, 11};
    std::vector<component_id> failed;
    // Each round floods up to #hosts sources, so a handful of rounds drives
    // the stamp through 0xFFFFFFFF -> wrap -> low values.
    for (int round = 0; round < 20; ++round) {
        sampler.next_round(failed);
        rs_wrapping.begin_round(failed);
        rs_fresh.begin_round(failed);
        wrapping.begin_round(rs_wrapping);
        fresh.begin_round(rs_fresh);
        for (const node_id a : topo.hosts) {
            for (const node_id b : topo.hosts) {
                ASSERT_EQ(wrapping.host_to_host(a, b), fresh.host_to_host(a, b))
                    << "round " << round << " pair " << a << "->" << b;
            }
        }
    }
}

TEST(BfsReachability, TargetHintAgreesWithFullFlood) {
    // A round begun with a query-target hint may truncate its floods; for
    // the hosts the hint names, every answer must equal the unhinted
    // oracle's. Duplicates in the hint are allowed (plan host lists repeat).
    const built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 4, .border_leaves = 1});
    const std::size_t n = topo.graph.node_count();
    std::vector<node_id> plan_hosts = {topo.hosts[0], topo.hosts[5],
                                       topo.hosts[9], topo.hosts[5],
                                       topo.hosts[14]};
    round_state rs_hinted{n, nullptr};
    round_state rs_full{n, nullptr};
    bfs_reachability hinted{topo};
    bfs_reachability full{topo};

    std::vector<double> probs(n, 0.15);
    monte_carlo_sampler sampler{probs, 23};
    std::vector<component_id> failed;
    for (int round = 0; round < 300; ++round) {
        sampler.next_round(failed);
        rs_hinted.begin_round(failed);
        rs_full.begin_round(failed);
        hinted.begin_round(rs_hinted, std::span<const node_id>{plan_hosts});
        full.begin_round(rs_full);
        for (const node_id a : plan_hosts) {
            ASSERT_EQ(hinted.border_reachable(a), full.border_reachable(a));
            for (const node_id b : plan_hosts) {
                ASSERT_EQ(hinted.host_to_host(a, b), full.host_to_host(a, b));
            }
        }
    }
}

TEST(BfsReachability, TargetHintCanChangeBetweenRounds) {
    // Switching to a different hint (the annealing search moves instances
    // between hosts) must fully retire the previous target set.
    const built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 2, .hosts_per_leaf = 4, .border_leaves = 1});
    const std::size_t n = topo.graph.node_count();
    round_state rs{n, nullptr};
    bfs_reachability oracle{topo};
    bfs_reachability reference{topo};
    round_state rs_ref{n, nullptr};

    const std::vector<node_id> first = {topo.hosts[0], topo.hosts[1]};
    const std::vector<node_id> second = {topo.hosts[6], topo.hosts[7]};
    const std::vector<component_id> none;
    for (const auto* hint : {&first, &second, &first}) {
        rs.begin_round(none);
        rs_ref.begin_round(none);
        oracle.begin_round(rs, std::span<const node_id>{*hint});
        reference.begin_round(rs_ref);
        for (const node_id h : *hint) {
            EXPECT_EQ(oracle.border_reachable(h), reference.border_reachable(h));
            EXPECT_EQ(oracle.host_to_host((*hint)[0], h),
                      reference.host_to_host((*hint)[0], h));
        }
    }
}

TEST(BfsReachability, AgreesWithFatTreeOracleOnUpDownReachableStates) {
    // On states where the up/down protocol finds a path, plain connectivity
    // must also find one (up/down paths are a subset of all paths).
    const fat_tree ft = fat_tree::build(4);
    const std::size_t n = ft.graph().node_count();
    std::vector<double> probs(n, 0.15);
    probs[ft.external()] = 0.0;
    monte_carlo_sampler sampler{probs, 5};
    round_state rs{n, nullptr};
    fat_tree_routing fast{ft};
    bfs_reachability slow{ft.topology()};
    std::vector<component_id> failed;
    for (int round = 0; round < 200; ++round) {
        sampler.next_round(failed);
        rs.begin_round(failed);
        fast.begin_round(rs);
        slow.begin_round(rs);
        for (const node_id h : ft.topology().hosts) {
            if (fast.border_reachable(h)) {
                ASSERT_TRUE(slow.border_reachable(h));
            }
        }
    }
}

}  // namespace
}  // namespace recloud
