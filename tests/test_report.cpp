#include "report/report.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "obs/metrics.hpp"

namespace recloud {
namespace {

TEST(JsonEscape, PassesPlainText) {
    EXPECT_EQ(json_escape("host#42"), "\"host#42\"");
}

TEST(JsonEscape, EscapesSpecials) {
    EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(json_escape("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(json_escape("line\nbreak"), "\"line\\nbreak\"");
    EXPECT_EQ(json_escape(std::string{"\x01"}), "\"\\u0001\"");
}

TEST(Report, AssessmentStatsJson) {
    const assessment_stats stats = make_assessment_stats(900, 1000);
    const std::string json = to_json(stats);
    EXPECT_EQ(json.find("{\"rounds\":1000,\"reliable\":900,"), 0u);
    EXPECT_NE(json.find("\"reliability\":0.9"), std::string::npos);
    EXPECT_NE(json.find("\"ciw95\":"), std::string::npos);
}

TEST(Report, DeploymentResponseJson) {
    deployment_response response;
    response.fulfilled = true;
    response.plan.hosts = {3, 7};
    response.stats = make_assessment_stats(95, 100);
    response.utility = 0.8;
    response.score = 0.875;
    response.search.plans_generated = 12;
    response.search.plans_evaluated = 10;
    const std::string json = to_json(response);
    EXPECT_NE(json.find("\"fulfilled\":true"), std::string::npos);
    EXPECT_NE(json.find("\"hosts\":[3,7]"), std::string::npos);
    EXPECT_NE(json.find("\"plans_generated\":12"), std::string::npos);
    EXPECT_NE(json.find("\"utility\":0.8"), std::string::npos);
}

TEST(Report, DeploymentResponseJsonWithNames) {
    component_registry registry;
    (void)registry.add(component_kind::host, "alpha");
    (void)registry.add(component_kind::host, "beta");
    deployment_response response;
    response.plan.hosts = {1};
    const std::string json = to_json(response, &registry);
    EXPECT_NE(json.find("{\"id\":1,\"name\":\"beta\"}"), std::string::npos);
}

TEST(Report, CriticalityJson) {
    component_registry registry;
    const component_id supply =
        registry.add(component_kind::power_supply, "ps0");
    criticality_report report;
    report.baseline = make_assessment_stats(99, 100);
    report.entries.push_back(
        criticality_entry{supply, 0.5, 0.49});
    const std::string json = to_json(report, registry);
    EXPECT_NE(json.find("\"name\":\"ps0\""), std::string::npos);
    EXPECT_NE(json.find("\"impact\":0.49"), std::string::npos);
    EXPECT_NE(json.find("\"conditional_reliability\":0.5"), std::string::npos);
}

TEST(Report, NonFiniteDoublesEmitNull) {
    // JSON has no nan/inf literal; %.12g would print "nan"/"inf" and break
    // every strict parser consuming the report (regression guard).
    deployment_response response;
    response.stats.reliability = std::numeric_limits<double>::quiet_NaN();
    response.stats.ciw95 = std::numeric_limits<double>::infinity();
    response.utility = -std::numeric_limits<double>::infinity();
    const std::string json = to_json(response);
    EXPECT_NE(json.find("\"reliability\":null"), std::string::npos);
    EXPECT_NE(json.find("\"ciw95\":null"), std::string::npos);
    EXPECT_NE(json.find("\"utility\":null"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Report, TelemetrySnapshotJson) {
    obs::metrics_registry registry;
    registry.set_enabled(true);
    registry.add(registry.counter("assess.rounds"), 123);
    registry.set(registry.gauge("cache.stats.hits"), 9);
    registry.observe(registry.histogram("span.ns"), 5);
    const std::string json = to_json(registry.snapshot());
    EXPECT_EQ(json.find("{\"build\":{"), 0u);
    EXPECT_NE(json.find("\"git\":"), std::string::npos);
    EXPECT_NE(json.find("\"assess.rounds\":123"), std::string::npos);
    EXPECT_NE(json.find("\"cache.stats.hits\":9"), std::string::npos);
    EXPECT_NE(json.find("\"span.ns\":{\"count\":1,\"sum\":5"),
              std::string::npos);
}

TEST(Report, DeploymentResponseJsonWithTelemetry) {
    obs::metrics_registry registry;
    registry.set(registry.gauge("engine.stats.batches"), 4);
    deployment_response response;
    const obs::telemetry_snapshot snapshot = registry.snapshot();
    const std::string json = to_json(response, nullptr, &snapshot);
    EXPECT_NE(json.find("\"telemetry\":{\"build\":"), std::string::npos);
    EXPECT_NE(json.find("\"engine.stats.batches\":4"), std::string::npos);
}

TEST(Report, TraceCsv) {
    annealing_result result;
    result.trace.push_back(annealing_trace_point{0.5, 0.9, 0.9, 3});
    result.trace.push_back(annealing_trace_point{1.25, 0.95, 0.94, 7});
    const std::string csv = trace_to_csv(result);
    EXPECT_EQ(csv,
              "elapsed_seconds,best_score,best_reliability,plans_evaluated\n"
              "0.5,0.9,0.9,3\n"
              "1.25,0.95,0.94,7\n");
}

TEST(Report, EmptyTraceIsHeaderOnly) {
    const annealing_result result;
    EXPECT_EQ(trace_to_csv(result),
              "elapsed_seconds,best_score,best_reliability,plans_evaluated\n");
}

}  // namespace
}  // namespace recloud
