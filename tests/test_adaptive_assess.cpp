// Adaptive-precision assessment: runs until the CIW95 target is met.
#include <gtest/gtest.h>

#include "assess/assessor.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

struct adaptive_fixture {
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 3, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    bfs_reachability oracle{topo};
    application app = application::k_of_n(1, 2);
    deployment_plan plan;

    adaptive_fixture() {
        for (component_id id = 0; id < registry.size(); ++id) {
            if (registry.kind(id) != component_kind::external) {
                registry.set_probability(id, 0.05);
            }
        }
        plan.hosts = {topo.hosts[0], topo.hosts[3]};
    }
};

TEST(AdaptiveAssess, ReachesTargetCiw) {
    adaptive_fixture f;
    extended_dagger_sampler sampler{f.registry.probabilities(), 3};
    round_state rs{f.registry.size(), nullptr};
    const assessment_stats stats = assess_until_ciw(
        sampler, rs, f.oracle, f.app, f.plan,
        {.target_ciw = 5e-3, .initial_rounds = 500, .max_rounds = 500000});
    EXPECT_LE(stats.ciw95, 5e-3);
    EXPECT_GT(stats.rounds, 500u);  // 500 rounds cannot reach 5e-3 here
}

TEST(AdaptiveAssess, TighterTargetNeedsMoreRounds) {
    adaptive_fixture f;
    extended_dagger_sampler s1{f.registry.probabilities(), 7};
    round_state rs1{f.registry.size(), nullptr};
    const assessment_stats loose = assess_until_ciw(
        s1, rs1, f.oracle, f.app, f.plan,
        {.target_ciw = 1e-2, .initial_rounds = 200, .max_rounds = 500000});
    extended_dagger_sampler s2{f.registry.probabilities(), 7};
    round_state rs2{f.registry.size(), nullptr};
    const assessment_stats tight = assess_until_ciw(
        s2, rs2, f.oracle, f.app, f.plan,
        {.target_ciw = 2e-3, .initial_rounds = 200, .max_rounds = 500000});
    EXPECT_LT(loose.rounds, tight.rounds);
    EXPECT_LE(tight.ciw95, 2e-3);
}

TEST(AdaptiveAssess, MaxRoundsCapsTheRun) {
    adaptive_fixture f;
    extended_dagger_sampler sampler{f.registry.probabilities(), 9};
    round_state rs{f.registry.size(), nullptr};
    const assessment_stats stats = assess_until_ciw(
        sampler, rs, f.oracle, f.app, f.plan,
        {.target_ciw = 1e-9, .initial_rounds = 100, .max_rounds = 5000});
    EXPECT_EQ(stats.rounds, 5000u);
    EXPECT_GT(stats.ciw95, 1e-9);  // target unreachable within the cap
}

TEST(AdaptiveAssess, TrivialTargetStopsImmediately) {
    adaptive_fixture f;
    extended_dagger_sampler sampler{f.registry.probabilities(), 11};
    round_state rs{f.registry.size(), nullptr};
    const assessment_stats stats = assess_until_ciw(
        sampler, rs, f.oracle, f.app, f.plan,
        {.target_ciw = 1.0, .initial_rounds = 100, .max_rounds = 500000});
    EXPECT_EQ(stats.rounds, 100u);
}

TEST(AdaptiveAssess, InvalidTargetRejected) {
    adaptive_fixture f;
    extended_dagger_sampler sampler{f.registry.probabilities(), 13};
    round_state rs{f.registry.size(), nullptr};
    EXPECT_THROW((void)assess_until_ciw(sampler, rs, f.oracle, f.app, f.plan,
                                        {.target_ciw = 0.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace recloud
