#include "app/application.hpp"

#include <gtest/gtest.h>

#include "app/deployment.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

TEST(Application, KOfNShape) {
    const application app = application::k_of_n(4, 5);
    ASSERT_EQ(app.components().size(), 1u);
    EXPECT_EQ(app.components()[0].replicas, 5u);
    ASSERT_EQ(app.requirements().size(), 1u);
    EXPECT_FALSE(app.requirements()[0].source.has_value());
    EXPECT_EQ(app.requirements()[0].min_reachable, 4u);
    EXPECT_EQ(app.total_instances(), 5u);
}

TEST(Application, LayeredShape) {
    const application app = application::layered(3, 4, 5);
    ASSERT_EQ(app.components().size(), 3u);
    ASSERT_EQ(app.requirements().size(), 3u);
    EXPECT_FALSE(app.requirements()[0].source.has_value());
    EXPECT_EQ(*app.requirements()[1].source, 0u);
    EXPECT_EQ(app.requirements()[1].target, 1u);
    EXPECT_EQ(*app.requirements()[2].source, 1u);
    EXPECT_EQ(app.total_instances(), 15u);
}

TEST(Application, MicroserviceXYComponentCount) {
    // Paper: a "10-20" structure has 210 components in total.
    const application app = application::microservice(10, 20, 4, 5);
    EXPECT_EQ(app.components().size(), 210u);
    EXPECT_EQ(app.total_instances(), 210u * 5u);
    // 10 external + 10*9 mesh + 200 support requirements.
    EXPECT_EQ(app.requirements().size(), 10u + 90u + 200u);
}

TEST(Application, MicroserviceMeshIsComplete) {
    const application app = application::microservice(3, 1, 1, 2);
    int mesh_requirements = 0;
    for (const auto& req : app.requirements()) {
        if (req.source && req.target < 3 && *req.source < 3) {
            ++mesh_requirements;
        }
    }
    EXPECT_EQ(mesh_requirements, 6);  // 3*2 ordered pairs
}

TEST(Application, InstanceOffsets) {
    const application app = application::layered(3, 1, 4);
    EXPECT_EQ(app.instance_offset(0), 0u);
    EXPECT_EQ(app.instance_offset(1), 4u);
    EXPECT_EQ(app.instance_offset(2), 8u);
    EXPECT_THROW((void)app.instance_offset(3), std::out_of_range);
}

TEST(Application, ValidationCatchesBadRequirements) {
    application app;
    const app_component_id c = app.add_component("only", 3);
    EXPECT_THROW(app.validate(), std::invalid_argument);  // no requirements

    app.require_external(c, 4);  // K > replicas
    EXPECT_THROW(app.validate(), std::invalid_argument);

    application self_ref;
    const app_component_id s = self_ref.add_component("s", 2);
    EXPECT_THROW(self_ref.require_reachable(s, s, 1);
                 self_ref.validate(), std::invalid_argument);
}

TEST(Application, ZeroReplicasRejected) {
    application app;
    EXPECT_THROW((void)app.add_component("empty", 0), std::invalid_argument);
}

TEST(Application, ZeroKRejected) {
    application app;
    const app_component_id c = app.add_component("c", 2);
    app.require_external(c, 0);
    EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(Application, RequirementAgainstMissingComponent) {
    application app;
    (void)app.add_component("c", 2);
    app.require_external(7, 1);
    EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(Application, LayeredRejectsZeroLayers) {
    EXPECT_THROW((void)application::layered(0, 1, 2), std::invalid_argument);
}

TEST(Application, MicroserviceRejectsZeroCores) {
    EXPECT_THROW((void)application::microservice(0, 5, 1, 2),
                 std::invalid_argument);
}

// ---- deployment plan validation -----------------------------------------

TEST(DeploymentPlan, InstancesOfSlicesComponentMajor) {
    const application app = application::layered(2, 1, 3);
    deployment_plan plan;
    plan.hosts = {10, 11, 12, 20, 21, 22};
    const auto layer0 = instances_of(plan, app, 0);
    const auto layer1 = instances_of(plan, app, 1);
    EXPECT_EQ(std::vector<node_id>(layer0.begin(), layer0.end()),
              (std::vector<node_id>{10, 11, 12}));
    EXPECT_EQ(std::vector<node_id>(layer1.begin(), layer1.end()),
              (std::vector<node_id>{20, 21, 22}));
}

TEST(DeploymentPlan, InstancesOfRejectsShortPlan) {
    const application app = application::k_of_n(1, 3);
    deployment_plan plan;
    plan.hosts = {1};
    EXPECT_THROW((void)instances_of(plan, app, 0), std::out_of_range);
}

TEST(DeploymentPlan, ValidatePlanChecks) {
    const built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 2, .hosts_per_leaf = 3, .border_leaves = 1});
    const application app = application::k_of_n(1, 2);

    deployment_plan good;
    good.hosts = {topo.hosts[0], topo.hosts[4]};
    EXPECT_NO_THROW(validate_plan(good, app, topo));

    deployment_plan wrong_size;
    wrong_size.hosts = {topo.hosts[0]};
    EXPECT_THROW(validate_plan(wrong_size, app, topo), std::invalid_argument);

    deployment_plan duplicate;
    duplicate.hosts = {topo.hosts[0], topo.hosts[0]};
    EXPECT_THROW(validate_plan(duplicate, app, topo), std::invalid_argument);

    deployment_plan not_a_host;
    not_a_host.hosts = {topo.hosts[0], topo.border_switches[0]};
    EXPECT_THROW(validate_plan(not_a_host, app, topo), std::invalid_argument);

    deployment_plan out_of_range;
    out_of_range.hosts = {topo.hosts[0],
                          static_cast<node_id>(topo.graph.node_count() + 5)};
    EXPECT_THROW(validate_plan(out_of_range, app, topo), std::invalid_argument);
}

TEST(DeploymentPlan, EqualityIsStructural) {
    deployment_plan a;
    a.hosts = {1, 2, 3};
    deployment_plan b;
    b.hosts = {1, 2, 3};
    EXPECT_EQ(a, b);
    b.hosts[1] = 9;
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace recloud
