// Link-failure modeling: attachment, BFS and fat-tree oracles under failed
// links, exact reliability with link probabilities, and a property suite
// checking the link-aware fat-tree oracle against an adjacency-walking
// valley-free reference.
#include <gtest/gtest.h>

#include <vector>

#include "assess/exact.hpp"
#include "faults/round_state.hpp"
#include "routing/bfs_reachability.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/monte_carlo.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/links.hpp"

namespace recloud {
namespace {

TEST(LinkAttachment, OneComponentPerEdge) {
    const built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 2, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    const std::size_t before = registry.size();
    const link_attachment links = attach_link_components(topo, registry);
    EXPECT_EQ(links.component_of_edge.size(), topo.graph.edge_count());
    EXPECT_EQ(registry.size(), before + topo.graph.edge_count());
    for (const component_id c : links.component_of_edge) {
        ASSERT_NE(c, invalid_node);
        EXPECT_EQ(registry.kind(c), component_kind::network_link);
    }
}

TEST(LinkAttachment, SkipExternalPeering) {
    const built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 2, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    const link_attachment links = attach_link_components(
        topo, registry, {.skip_external_peering = true});
    std::size_t skipped = 0;
    for (std::uint32_t e = 0; e < topo.graph.edge_count(); ++e) {
        const auto [a, b] = topo.graph.edge_endpoints(e);
        const bool peering = topo.graph.kind(a) == node_kind::external ||
                             topo.graph.kind(b) == node_kind::external;
        if (peering) {
            EXPECT_EQ(links.component_of_edge[e], invalid_node);
            ++skipped;
        } else {
            EXPECT_NE(links.component_of_edge[e], invalid_node);
        }
    }
    EXPECT_EQ(skipped, 1u);  // one border leaf
}

TEST(GraphEdges, EdgeIdsRoundtrip) {
    const built_topology topo = build_leaf_spine({});
    for (node_id n = 0; n < topo.graph.node_count(); ++n) {
        const auto neighbors = topo.graph.neighbors(n);
        const auto edges = topo.graph.incident_edges(n);
        ASSERT_EQ(neighbors.size(), edges.size());
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
            const auto [a, b] = topo.graph.edge_endpoints(edges[i]);
            EXPECT_TRUE((a == n && b == neighbors[i]) ||
                        (b == n && a == neighbors[i]));
            EXPECT_EQ(topo.graph.edge_id(n, neighbors[i]), edges[i]);
        }
    }
    EXPECT_THROW((void)topo.graph.edge_endpoints(
                     static_cast<std::uint32_t>(topo.graph.edge_count())),
                 std::out_of_range);
}

TEST(GraphEdges, MissingEdgeThrows) {
    network_graph g;
    const node_id a = g.add_node(node_kind::host);
    const node_id b = g.add_node(node_kind::host);
    (void)g.add_node(node_kind::host);
    g.add_edge(a, b);
    g.freeze();
    EXPECT_THROW((void)g.edge_id(a, 2), std::invalid_argument);
}

TEST(BfsLinks, CutLinkIsolatesExactlyItsPaths) {
    const built_topology topo = build_leaf_spine(
        {.spines = 1, .leaves = 2, .hosts_per_leaf = 1, .border_leaves = 1});
    component_registry registry{topo.graph};
    const link_attachment links = attach_link_components(topo, registry);
    round_state rs{registry.size(), nullptr};
    bfs_reachability oracle{topo, &links};

    const node_id host0 = topo.hosts[0];
    const node_id leaf0 = rack_of(topo.graph, host0);
    const component_id cut =
        links.component_of_edge[topo.graph.edge_id(host0, leaf0)];

    rs.begin_round(std::vector<component_id>{cut});
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(host0));  // the cut access link
    EXPECT_TRUE(oracle.border_reachable(topo.hosts[1]));
    EXPECT_FALSE(oracle.host_to_host(host0, topo.hosts[1]));
    EXPECT_TRUE(oracle.host_to_host(host0, host0));  // the host itself is fine
}

TEST(BfsLinks, MismatchedAttachmentRejected) {
    const built_topology a = build_leaf_spine({});
    const built_topology b = build_leaf_spine({.leaves = 3});
    component_registry registry{b.graph};
    const link_attachment links = attach_link_components(b, registry);
    EXPECT_THROW((bfs_reachability{a, &links}), std::invalid_argument);
}

TEST(ExactLinks, SerialChainIncludesLinkProbabilities) {
    // external - border - spine - leaf - host with fallible links: R is the
    // product over all nodes AND links on the only path.
    built_topology topo = build_leaf_spine(
        {.spines = 1, .leaves = 1, .hosts_per_leaf = 1, .border_leaves = 1});
    component_registry registry{topo.graph};
    const link_attachment links = attach_link_components(topo, registry);
    const node_id host = topo.hosts[0];
    const node_id leaf = rack_of(topo.graph, host);
    registry.set_probability(host, 0.1);
    registry.set_probability(
        links.component_of_edge[topo.graph.edge_id(host, leaf)], 0.2);

    bfs_reachability oracle{topo, &links};
    const application app = application::k_of_n(1, 1);
    deployment_plan plan;
    plan.hosts = {host};
    EXPECT_NEAR(exact_reliability(registry, nullptr, oracle, app, plan),
                0.9 * 0.8, 1e-12);
}

// ---- fat-tree oracle with links vs adjacency reference -------------------

struct link_env {
    fat_tree ft;
    component_registry registry;
    link_attachment links;

    explicit link_env(int k)
        : ft(fat_tree::build(k)),
          registry(ft.graph()),
          links(attach_link_components(ft.topology(), registry)) {}

    [[nodiscard]] bool link_alive(round_state& rs, node_id a, node_id b) const {
        const component_id c =
            links.component_of_edge[ft.graph().edge_id(a, b)];
        return c == invalid_node || !rs.failed(c);
    }
};

bool ref_border_reachable(const link_env& env, round_state& rs, node_id host) {
    const fat_tree& ft = env.ft;
    const network_graph& g = ft.graph();
    const auto ok = [&](node_id n) { return !rs.failed(n); };
    const node_id edge = ft.edge_of_host(host);
    if (!ok(host) || !env.link_alive(rs, host, edge) || !ok(edge)) {
        return false;
    }
    for (const node_id agg : g.neighbors(edge)) {
        if (g.kind(agg) != node_kind::aggregation_switch || !ok(agg) ||
            !env.link_alive(rs, edge, agg)) {
            continue;
        }
        for (const node_id core : g.neighbors(agg)) {
            if (g.kind(core) != node_kind::core_switch || !ok(core) ||
                !env.link_alive(rs, agg, core)) {
                continue;
            }
            for (const node_id border : g.neighbors(core)) {
                if (g.kind(border) == node_kind::border_switch && ok(border) &&
                    env.link_alive(rs, core, border) &&
                    env.link_alive(rs, border, ft.external())) {
                    return true;
                }
            }
        }
    }
    return false;
}

bool ref_host_to_host(const link_env& env, round_state& rs, node_id a,
                      node_id b) {
    const fat_tree& ft = env.ft;
    const network_graph& g = ft.graph();
    const auto ok = [&](node_id n) { return !rs.failed(n); };
    if (!ok(a) || !ok(b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    const node_id edge_a = ft.edge_of_host(a);
    const node_id edge_b = ft.edge_of_host(b);
    if (!env.link_alive(rs, a, edge_a) || !env.link_alive(rs, b, edge_b) ||
        !ok(edge_a)) {
        return false;
    }
    if (edge_a == edge_b) {
        return true;
    }
    if (!ok(edge_b)) {
        return false;
    }
    for (const node_id agg : g.neighbors(edge_a)) {
        if (g.kind(agg) != node_kind::aggregation_switch || !ok(agg) ||
            !env.link_alive(rs, edge_a, agg)) {
            continue;
        }
        if (g.has_edge(agg, edge_b) && env.link_alive(rs, agg, edge_b)) {
            return true;
        }
        for (const node_id core : g.neighbors(agg)) {
            if (g.kind(core) != node_kind::core_switch || !ok(core) ||
                !env.link_alive(rs, agg, core)) {
                continue;
            }
            for (const node_id agg_b : g.neighbors(core)) {
                if (g.kind(agg_b) == node_kind::aggregation_switch &&
                    ok(agg_b) && env.link_alive(rs, core, agg_b) &&
                    g.has_edge(agg_b, edge_b) &&
                    env.link_alive(rs, agg_b, edge_b)) {
                    return true;
                }
            }
        }
    }
    return false;
}

struct link_routing_case {
    int k;
    double failure_probability;
};

class FatTreeLinkRouting : public ::testing::TestWithParam<link_routing_case> {};

TEST_P(FatTreeLinkRouting, MatchesAdjacencyReference) {
    const auto [k, q] = GetParam();
    link_env env{k};
    // Nodes and links all fallible with probability q.
    std::vector<double> probs(env.registry.size(), q);
    probs[env.ft.external()] = 0.0;
    monte_carlo_sampler sampler{probs, 777 + static_cast<std::uint64_t>(k)};
    round_state rs{env.registry.size(), nullptr};
    fat_tree_routing oracle{env.ft, &env.links};
    rng pick{55};
    const auto& hosts = env.ft.topology().hosts;

    std::vector<component_id> failed;
    for (int round = 0; round < 250; ++round) {
        sampler.next_round(failed);
        rs.begin_round(failed);
        oracle.begin_round(rs);
        for (int probe = 0; probe < 8; ++probe) {
            const node_id h = hosts[pick.uniform_below(hosts.size())];
            ASSERT_EQ(oracle.border_reachable(h),
                      ref_border_reachable(env, rs, h))
                << "k=" << k << " round=" << round << " host=" << h;
            const node_id h2 = hosts[pick.uniform_below(hosts.size())];
            ASSERT_EQ(oracle.host_to_host(h, h2),
                      ref_host_to_host(env, rs, h, h2))
                << "k=" << k << " round=" << round << " pair=" << h << "," << h2;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FatTreeLinkRouting,
    ::testing::Values(link_routing_case{4, 0.05}, link_routing_case{4, 0.3},
                      link_routing_case{8, 0.05}, link_routing_case{8, 0.25},
                      link_routing_case{12, 0.1}),
    [](const auto& info) {
        return "k" + std::to_string(info.param.k) + "_q" +
               std::to_string(static_cast<int>(info.param.failure_probability * 100));
    });

TEST(FatTreeLinks, CutHostUplinkIsolatesHostOnly) {
    link_env env{4};
    round_state rs{env.registry.size(), nullptr};
    fat_tree_routing oracle{env.ft, &env.links};
    const node_id victim = env.ft.host(0, 0, 0);
    const node_id sibling = env.ft.host(0, 0, 1);
    const component_id cut = env.links.component_of_edge[env.ft.graph().edge_id(
        victim, env.ft.edge_of_host(victim))];
    rs.begin_round(std::vector<component_id>{cut});
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(victim));
    EXPECT_TRUE(oracle.border_reachable(sibling));
    EXPECT_FALSE(oracle.host_to_host(victim, sibling));
}

TEST(FatTreeLinks, CutPeeringLinkRemovesOneExternalGroup) {
    link_env env{4};
    round_state rs{env.registry.size(), nullptr};
    fat_tree_routing oracle{env.ft, &env.links};
    // Cut border 0's external peering and kill agg group 1 in pod 0: pod 0
    // then has no external path (its only alive group leads to border 0).
    const component_id peering0 =
        env.links.component_of_edge[env.ft.graph().edge_id(
            env.ft.border(0), env.ft.external())];
    rs.begin_round(
        std::vector<component_id>{peering0, env.ft.aggregation(0, 1)});
    oracle.begin_round(rs);
    EXPECT_FALSE(oracle.border_reachable(env.ft.host(0, 0, 0)));
    EXPECT_TRUE(oracle.border_reachable(env.ft.host(1, 0, 0)));
}

}  // namespace
}  // namespace recloud
