// Whole-system integration scenarios: dependency acquisition + link model +
// search + assessment working together across architectures, plus
// statistical cross-checks between independent paths through the system.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "assess/downtime.hpp"
#include "assess/exact.hpp"
#include "core/recloud.hpp"
#include "deps/hardware_inventory.hpp"
#include "deps/network_deps.hpp"
#include "deps/software_deps.hpp"
#include "exec/engine.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/bcube.hpp"
#include "topology/leaf_spine.hpp"

namespace recloud {
namespace {

TEST(Integration, FullDependencyStackOnLeafSpine) {
    // Build a provider environment with every dependency source at once:
    // power, links, firmware, software stacks, mined network services.
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 4, .hosts_per_leaf = 3, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    (void)attach_power_supplies(topo, registry, forest, {.supply_count = 3});
    const link_attachment links = attach_link_components(topo, registry);
    (void)survey_hardware(topo, registry, forest, {.firmware_versions = 2});
    const software_catalog catalog = generate_software_catalog(
        registry, {.packages = 15, .stacks = 2, .top_level_packages_per_stack = 2});
    (void)install_software(topo, catalog, forest);
    const network_services services =
        deploy_network_services(topo, registry, {.service_categories = 1});
    attach_mined_dependencies(
        mine_dependencies(synthesize_flows(topo, services, {}), 10), forest);

    rng random{3};
    assign_paper_probabilities(registry, random);
    workload_map workloads{topo, random};
    bfs_reachability oracle{topo, &links};

    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(topo)
                                      .registry(registry)
                                      .forest(forest)
                                      .oracle(oracle)
                                      .workloads(workloads)
                                      .links(links)
                                      .freeze();

    recloud_options options;
    options.assessment_rounds = 2000;
    options.max_iterations = 40;
    options.multi_objective = true;
    re_cloud system{snapshot, options};

    deployment_request request;
    request.app = application::layered(2, 1, 2);
    request.desired_reliability = 0.5;  // the stack is heavy; modest target
    request.max_search_time = std::chrono::seconds{15};
    const deployment_response response = system.find_deployment(request);
    EXPECT_TRUE(response.fulfilled);
    EXPECT_EQ(response.plan.hosts.size(), 4u);
    EXPECT_GT(response.stats.reliability, 0.5);
    EXPECT_LT(response.stats.reliability, 1.0);
}

TEST(Integration, EngineAndAssessorAgreeWithLinksAndTrees) {
    // The MapReduce engine and the single-threaded assessor must produce
    // the identical reliable count on the identical sampler stream, with
    // fault trees AND links in play.
    built_topology topo = build_leaf_spine(
        {.spines = 2, .leaves = 3, .hosts_per_leaf = 2, .border_leaves = 1});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    (void)attach_power_supplies(topo, registry, forest, {.supply_count = 2});
    link_attachment links = attach_link_components(topo, registry);
    rng random{5};
    assign_paper_probabilities(registry, random);

    const application app = application::k_of_n(1, 2);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[4]};

    extended_dagger_sampler serial_sampler{registry.probabilities(), 42};
    round_state rs{registry.size(), &forest};
    bfs_reachability serial_oracle{topo, &links};
    const assessment_stats serial =
        assess_deployment(serial_sampler, rs, serial_oracle, app, plan, 3000);

    extended_dagger_sampler engine_sampler{registry.probabilities(), 42};
    assessment_engine engine{
        registry.size(), &forest,
        [&] { return std::make_unique<bfs_reachability>(topo, &links); },
        {.workers = 3, .batch_rounds = 97}};
    const assessment_stats parallel =
        engine.assess(engine_sampler, app, plan, 3000);

    EXPECT_EQ(serial.reliable, parallel.reliable);
    EXPECT_EQ(serial.rounds, parallel.rounds);
}

TEST(Integration, SampledMatchesExactOnServerCentricTopology) {
    // BCube end-to-end: extended dagger sampling through the BFS oracle
    // must agree with exhaustive enumeration.
    built_topology topo = build_bcube({.ports = 3, .levels = 1,
                                       .border_switches = 1});
    component_registry registry{topo.graph};
    // Only 9 servers' own failures + 6 switches = 15 fallible components.
    double p = 0.03;
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) != component_kind::external) {
            registry.set_probability(id, p);
            p = p >= 0.06 ? 0.03 : p + 0.005;
        }
    }
    bfs_reachability oracle{topo};
    const application app = application::k_of_n(2, 3);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[4], topo.hosts[8]};

    const double truth =
        exact_reliability(registry, nullptr, oracle, app, plan);
    extended_dagger_sampler sampler{registry.probabilities(), 77};
    round_state rs{registry.size(), nullptr};
    const assessment_stats stats =
        assess_deployment(sampler, rs, oracle, app, plan, 30000);
    EXPECT_NEAR(stats.reliability, truth, 1.5 * stats.ciw95 + 1e-3);
}

TEST(Integration, SearchImprovesOverRandomPlansStatistically) {
    // The search's best plan should beat the average random plan under the
    // same CRN evaluation — a direct check that annealing actually climbs.
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    recloud_options options;
    options.assessment_rounds = 2000;
    options.max_iterations = 120;
    options.seed = 21;
    re_cloud system{infra, options};
    const application app = application::k_of_n(4, 5);
    deployment_request request;
    request.app = app;
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{20};
    const deployment_response found = system.find_deployment(request);

    // Average reliability of 10 random plans.
    neighbor_generator gen{infra.topology(), anti_affinity::none, 5};
    double random_sum = 0.0;
    for (int i = 0; i < 10; ++i) {
        random_sum += system.assess(app, gen.initial_plan(5), 2000).reliability;
    }
    EXPECT_GE(found.stats.reliability + 0.004, random_sum / 10.0);
}

TEST(Integration, DowntimeRoundtripThroughTheFacade) {
    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    re_cloud system{infra, {.assessment_rounds = 2000, .max_iterations = 20}};
    deployment_request request;
    request.app = application::k_of_n(1, 2);
    request.desired_reliability = reliability_for_downtime(24.0 * 365.0);
    request.max_search_time = std::chrono::seconds{5};
    // Accepting a full year of downtime means any plan qualifies.
    const deployment_response response = system.find_deployment(request);
    EXPECT_TRUE(response.fulfilled);
}

}  // namespace
}  // namespace recloud
