#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace recloud {
namespace {

TEST(RunningStats, EmptyIsZero) {
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
    running_stats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
    running_stats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
    running_stats s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStats, MergeMatchesSequential) {
    running_stats all;
    running_stats left;
    running_stats right;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        all.add(x);
        (i < 37 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
}

TEST(RunningStats, MergeWithEmpty) {
    running_stats a;
    a.add(1.0);
    a.add(2.0);
    running_stats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 1.5);

    running_stats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(AssessmentStats, ZeroRounds) {
    const assessment_stats s = make_assessment_stats(0, 0);
    EXPECT_EQ(s.rounds, 0u);
    EXPECT_EQ(s.reliability, 0.0);
    EXPECT_EQ(s.ciw95, 0.0);
}

TEST(AssessmentStats, AllReliable) {
    const assessment_stats s = make_assessment_stats(100, 100);
    EXPECT_DOUBLE_EQ(s.reliability, 1.0);
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.ciw95, 0.0);
}

TEST(AssessmentStats, PaperEquations) {
    // R = 0.9 over n = 1000: Var[L] = 0.09, V = 9e-5, CIW = 4*sqrt(V).
    const assessment_stats s = make_assessment_stats(900, 1000);
    EXPECT_DOUBLE_EQ(s.reliability, 0.9);
    EXPECT_DOUBLE_EQ(s.variance, 0.9 * 0.1 / 1000.0);
    EXPECT_DOUBLE_EQ(s.ciw95, 4.0 * std::sqrt(0.9 * 0.1 / 1000.0));
}

TEST(AssessmentStats, CiwShrinksWithRounds) {
    const assessment_stats small = make_assessment_stats(90, 100);
    const assessment_stats large = make_assessment_stats(9000, 10000);
    EXPECT_DOUBLE_EQ(small.reliability, large.reliability);
    EXPECT_GT(small.ciw95, large.ciw95);
    // Quadrupling n halves CIW; 100x n gives 10x smaller CIW.
    EXPECT_NEAR(small.ciw95 / large.ciw95, 10.0, 1e-9);
}

TEST(RoundToDecimals, FourDecimalPaperSetting) {
    EXPECT_DOUBLE_EQ(round_to_decimals(0.00817345, 4), 0.0082);
    EXPECT_DOUBLE_EQ(round_to_decimals(0.00814999, 4), 0.0081);
    EXPECT_DOUBLE_EQ(round_to_decimals(1.23456, 2), 1.23);
    EXPECT_DOUBLE_EQ(round_to_decimals(-0.00455, 3), -0.005);
}

TEST(Clamp, Basics) {
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(SpanHelpers, MeanAndVariance) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean_of(xs), 5.0);
    EXPECT_DOUBLE_EQ(variance_of(xs), 4.0);
}

}  // namespace
}  // namespace recloud
