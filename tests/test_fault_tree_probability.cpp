// Tests for fault_tree_forest::failure_probability — the series/parallel
// reduction used by the network-transformation symmetry check — validated
// against exhaustive enumeration over leaf states.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "faults/fault_tree.hpp"
#include "util/rng.hpp"

namespace recloud {
namespace {

/// Exact tree failure probability by enumerating all leaf subsets.
double enumerate_probability(const fault_tree_forest& forest, tree_node_id root,
                             const std::vector<double>& leaf_probs) {
    const std::size_t n = leaf_probs.size();
    double total = 0.0;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
        double p = 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            p *= (mask & (std::uint64_t{1} << i)) ? leaf_probs[i]
                                                  : 1.0 - leaf_probs[i];
        }
        const bool failed = forest.evaluate(root, [&](component_id id) {
            return (mask & (std::uint64_t{1} << id)) != 0;
        });
        if (failed) {
            total += p;
        }
    }
    return total;
}

TEST(FaultTreeProbability, LeafIsItsOwnProbability) {
    fault_tree_forest forest{4};
    const tree_node_id leaf = forest.add_leaf(2);
    const double p = forest.failure_probability(
        leaf, [](component_id id) { return id == 2 ? 0.3 : 0.0; });
    EXPECT_DOUBLE_EQ(p, 0.3);
}

TEST(FaultTreeProbability, OrCombinesAsComplementProduct) {
    fault_tree_forest forest{2};
    const tree_node_id gate =
        forest.add_or({forest.add_leaf(0), forest.add_leaf(1)});
    const std::vector<double> probs{0.1, 0.2};
    const double p = forest.failure_probability(
        gate, [&](component_id id) { return probs[id]; });
    EXPECT_NEAR(p, 1.0 - 0.9 * 0.8, 1e-15);
}

TEST(FaultTreeProbability, AndCombinesAsProduct) {
    fault_tree_forest forest{2};
    const tree_node_id gate =
        forest.add_and({forest.add_leaf(0), forest.add_leaf(1)});
    const std::vector<double> probs{0.1, 0.2};
    const double p = forest.failure_probability(
        gate, [&](component_id id) { return probs[id]; });
    EXPECT_NEAR(p, 0.02, 1e-15);
}

TEST(FaultTreeProbability, KOfNMatchesBinomial) {
    // 3 identical leaves p=0.5, k=2: C(3,2)/8 + C(3,3)/8 = 0.5.
    fault_tree_forest forest{3};
    const tree_node_id gate = forest.add_k_of_n(
        2, {forest.add_leaf(0), forest.add_leaf(1), forest.add_leaf(2)});
    const double p =
        forest.failure_probability(gate, [](component_id) { return 0.5; });
    EXPECT_NEAR(p, 0.5, 1e-15);
}

TEST(FaultTreeProbability, Figure5TreeMatchesEnumeration) {
    // OR( OR(os, lib), AND(p1, p2), AND(c1, c2) ) over 6 leaves.
    fault_tree_forest forest{6};
    const tree_node_id software =
        forest.add_or({forest.add_leaf(0), forest.add_leaf(1)});
    const tree_node_id power =
        forest.add_and({forest.add_leaf(2), forest.add_leaf(3)});
    const tree_node_id cooling =
        forest.add_and({forest.add_leaf(4), forest.add_leaf(5)});
    const tree_node_id root = forest.add_or({software, power, cooling});

    const std::vector<double> probs{0.01, 0.03, 0.1, 0.1, 0.05, 0.2};
    const double reduced = forest.failure_probability(
        root, [&](component_id id) { return probs[id]; });
    const double exact = enumerate_probability(forest, root, probs);
    EXPECT_NEAR(reduced, exact, 1e-12);
}

TEST(FaultTreeProbability, RandomTreesMatchEnumeration) {
    // Property: for random gate trees over up to 8 leaves with random
    // probabilities, the reduction equals exhaustive enumeration. (Leaves
    // are distinct components, so independence holds and the reduction is
    // exact.)
    rng random{2024};
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t leaves = 2 + random.uniform_below(7);
        fault_tree_forest forest{leaves};
        std::vector<double> probs;
        std::vector<tree_node_id> nodes;
        for (std::size_t i = 0; i < leaves; ++i) {
            probs.push_back(random.uniform(0.01, 0.9));
            nodes.push_back(forest.add_leaf(static_cast<component_id>(i)));
        }
        // Repeatedly combine random disjoint groups until one root remains.
        while (nodes.size() > 1) {
            const std::size_t take =
                2 + random.uniform_below(std::min<std::size_t>(nodes.size(), 3) - 1);
            std::vector<tree_node_id> children(nodes.end() - take, nodes.end());
            nodes.resize(nodes.size() - take);
            const int kind = static_cast<int>(random.uniform_below(3));
            if (kind == 0) {
                nodes.push_back(forest.add_or(children));
            } else if (kind == 1) {
                nodes.push_back(forest.add_and(children));
            } else {
                const std::uint32_t k =
                    1 + static_cast<std::uint32_t>(random.uniform_below(take));
                nodes.push_back(forest.add_k_of_n(k, children));
            }
        }
        const double reduced = forest.failure_probability(
            nodes.front(), [&](component_id id) { return probs[id]; });
        const double exact = enumerate_probability(forest, nodes.front(), probs);
        ASSERT_NEAR(reduced, exact, 1e-10) << "trial " << trial;
    }
}

TEST(FaultTreeProbability, ZeroAndOneEndpoints) {
    fault_tree_forest forest{2};
    const tree_node_id gate =
        forest.add_or({forest.add_leaf(0), forest.add_leaf(1)});
    EXPECT_DOUBLE_EQ(
        forest.failure_probability(gate, [](component_id) { return 0.0; }), 0.0);
    EXPECT_DOUBLE_EQ(
        forest.failure_probability(gate, [](component_id) { return 1.0; }), 1.0);
}

}  // namespace
}  // namespace recloud
